#include "linalg/dense_block.h"

#include <bit>
#include <cmath>
#include <cstring>

namespace apspark::linalg {

namespace {

std::atomic<std::uint64_t> g_total_copies{0};
std::atomic<std::uint64_t> g_sanctioned_copies{0};
thread_local int g_cow_depth = 0;

/// Counts one deep copy of a materialized payload (phantom and empty blocks
/// carry nothing, so duplicating them is free and uncounted).
void CountCopy(bool phantom, std::size_t payload_elems) noexcept {
  if (phantom || payload_elems == 0) return;
  g_total_copies.fetch_add(1, std::memory_order_relaxed);
  if (g_cow_depth > 0) {
    g_sanctioned_copies.fetch_add(1, std::memory_order_relaxed);
  }
}

std::int64_t WordsPerRow(std::int64_t cols) noexcept {
  return (cols + 63) >> 6;
}

}  // namespace

std::uint64_t BlockCopyStats::TotalCopies() noexcept {
  return g_total_copies.load(std::memory_order_relaxed);
}

std::uint64_t BlockCopyStats::SanctionedCopies() noexcept {
  return g_sanctioned_copies.load(std::memory_order_relaxed);
}

std::uint64_t BlockCopyStats::UnsanctionedCopies() noexcept {
  return TotalCopies() - SanctionedCopies();
}

void BlockCopyStats::Reset() noexcept {
  g_total_copies.store(0, std::memory_order_relaxed);
  g_sanctioned_copies.store(0, std::memory_order_relaxed);
}

CowScope::CowScope() noexcept { ++g_cow_depth; }
CowScope::~CowScope() { --g_cow_depth; }

DenseBlock::DenseBlock(const DenseBlock& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      words_per_row_(other.words_per_row_),
      phantom_(other.phantom_),
      packed_(other.packed_),
      data_(other.data_),
      words_(other.words_) {
  CountCopy(phantom_, data_.size() + words_.size());
}

DenseBlock& DenseBlock::operator=(const DenseBlock& other) {
  if (this == &other) return *this;
  rows_ = other.rows_;
  cols_ = other.cols_;
  words_per_row_ = other.words_per_row_;
  phantom_ = other.phantom_;
  packed_ = other.packed_;
  data_ = other.data_;
  words_ = other.words_;
  CountCopy(phantom_, data_.size() + words_.size());
  return *this;
}

DenseBlock::DenseBlock(std::int64_t rows, std::int64_t cols, double fill)
    : rows_(rows),
      cols_(cols),
      data_(static_cast<std::size_t>(rows * cols), fill) {}

DenseBlock::DenseBlock(std::int64_t rows, std::int64_t cols,
                       std::vector<double> data)
    : rows_(rows), cols_(cols), data_(std::move(data)) {
  if (data_.size() != static_cast<std::size_t>(rows * cols)) {
    throw std::invalid_argument("DenseBlock: data size does not match shape");
  }
}

DenseBlock DenseBlock::Phantom(std::int64_t rows, std::int64_t cols) {
  DenseBlock b;
  b.rows_ = rows;
  b.cols_ = cols;
  b.phantom_ = true;
  return b;
}

DenseBlock DenseBlock::PackedBoolean(std::int64_t rows, std::int64_t cols,
                                     double fill) {
  if (fill != 0.0 && fill != 1.0) {
    throw std::invalid_argument("PackedBoolean: fill must be 0 or 1");
  }
  DenseBlock b;
  b.rows_ = rows;
  b.cols_ = cols;
  b.packed_ = true;
  b.words_per_row_ = WordsPerRow(cols);
  b.words_.assign(static_cast<std::size_t>(rows * b.words_per_row_),
                  fill != 0.0 ? ~std::uint64_t{0} : std::uint64_t{0});
  if (fill != 0.0 && (cols & 63) != 0) {
    // Keep the tail bits past `cols` zero: word-parallel kernels or whole
    // words, and popcount-style predicates must not see ghost columns.
    const std::uint64_t tail_mask =
        (std::uint64_t{1} << (cols & 63)) - 1;
    for (std::int64_t r = 0; r < rows; ++r) {
      b.MutableWordRow(r)[b.words_per_row_ - 1] = tail_mask;
    }
  }
  return b;
}

DenseBlock DenseBlock::PackedPhantom(std::int64_t rows, std::int64_t cols) {
  DenseBlock b;
  b.rows_ = rows;
  b.cols_ = cols;
  b.phantom_ = true;
  b.packed_ = true;
  b.words_per_row_ = WordsPerRow(cols);
  return b;
}

DenseBlock DenseBlock::Unpacked() const {
  if (!packed_) return *this;
  if (phantom_) return Phantom(rows_, cols_);
  DenseBlock out(rows_, cols_, 0.0);
  for (std::int64_t r = 0; r < rows_; ++r) {
    double* row = out.MutableRow(r);
    for (std::int64_t c = 0; c < cols_; ++c) {
      row[c] = GetBit(r, c) ? 1.0 : 0.0;
    }
  }
  return out;
}

DenseBlock DenseBlock::BitPacked() const {
  if (packed_) return *this;
  if (phantom_) return PackedPhantom(rows_, cols_);
  DenseBlock out = PackedBoolean(rows_, cols_);
  for (std::int64_t r = 0; r < rows_; ++r) {
    const double* row = Row(r);
    for (std::int64_t c = 0; c < cols_; ++c) {
      if (row[c] != 0.0) out.SetBit(r, c, true);
    }
  }
  return out;
}

namespace {
// Serialized layout: rows (8) + cols (8) + flags (1) + payload. Flags byte:
// bit 0 = phantom, bit 1 = bit-packed.
constexpr std::uint64_t kHeaderBytes = 8 + 8 + 1;
constexpr std::uint8_t kFlagPhantom = 1;
constexpr std::uint8_t kFlagPacked = 2;
}  // namespace

std::uint64_t DenseBlock::SerializedBytes() const noexcept {
  const std::uint64_t payload =
      packed_ ? static_cast<std::uint64_t>(rows_ * words_per_row_) *
                    sizeof(std::uint64_t)
              : static_cast<std::uint64_t>(rows_ * cols_) * sizeof(double);
  return kHeaderBytes + payload;
}

void DenseBlock::Serialize(BinaryWriter& writer) const {
  writer.Write(rows_);
  writer.Write(cols_);
  std::uint8_t flags = 0;
  if (phantom_) flags |= kFlagPhantom;
  if (packed_) flags |= kFlagPacked;
  writer.Write(flags);
  if (phantom_) return;
  if (packed_) {
    writer.WriteRaw(words_.data(), words_.size() * sizeof(std::uint64_t));
  } else {
    writer.WriteRaw(data_.data(), data_.size() * sizeof(double));
  }
}

Result<DenseBlock> DenseBlock::Deserialize(BinaryReader& reader) {
  auto rows = reader.Read<std::int64_t>();
  if (!rows.ok()) return rows.status();
  auto cols = reader.Read<std::int64_t>();
  if (!cols.ok()) return cols.status();
  auto flags = reader.Read<std::uint8_t>();
  if (!flags.ok()) return flags.status();
  if (*rows < 0 || *cols < 0) {
    return InvalidArgumentError("DenseBlock: negative shape");
  }
  const bool phantom = (*flags & kFlagPhantom) != 0;
  const bool packed = (*flags & kFlagPacked) != 0;
  if (phantom) {
    return packed ? PackedPhantom(*rows, *cols) : Phantom(*rows, *cols);
  }
  if (packed) {
    const std::int64_t wpr = WordsPerRow(*cols);
    const std::size_t count = static_cast<std::size_t>(*rows * wpr);
    if (reader.remaining() < count * sizeof(std::uint64_t)) {
      return OutOfRangeError("DenseBlock: truncated packed payload");
    }
    DenseBlock out = PackedBoolean(*rows, *cols);
    for (std::size_t i = 0; i < count; ++i) {
      auto v = reader.Read<std::uint64_t>();
      if (!v.ok()) return v.status();
      out.words_[i] = *v;
    }
    CountCopy(/*phantom=*/false, count);
    return out;
  }
  const std::size_t count = static_cast<std::size_t>(*rows * *cols);
  if (reader.remaining() < count * sizeof(double)) {
    return OutOfRangeError("DenseBlock: truncated payload");
  }
  std::vector<double> data(count);
  for (std::size_t i = 0; i < count; ++i) {
    auto v = reader.Read<double>();
    if (!v.ok()) return v.status();
    data[i] = *v;
  }
  // Materializing a payload from bytes duplicates block data just like a
  // copy constructor would — the zero-copy data plane must not do it on hot
  // paths, so it counts (durability paths sanction it with a CowScope).
  CountCopy(/*phantom=*/false, count);
  return DenseBlock(*rows, *cols, std::move(data));
}

DenseBlock DenseBlock::Column(std::int64_t c) const {
  if (phantom_) {
    return packed_ ? PackedPhantom(rows_, 1) : Phantom(rows_, 1);
  }
  if (packed_) {
    DenseBlock out = PackedBoolean(rows_, 1);
    for (std::int64_t r = 0; r < rows_; ++r) {
      if (GetBit(r, c)) out.SetBit(r, 0, true);
    }
    return out;
  }
  DenseBlock out(rows_, 1, 0.0);
  for (std::int64_t r = 0; r < rows_; ++r) out.Set(r, 0, At(r, c));
  return out;
}

DenseBlock DenseBlock::RowBlock(std::int64_t r) const {
  if (phantom_) {
    return packed_ ? PackedPhantom(1, cols_) : Phantom(1, cols_);
  }
  if (packed_) {
    DenseBlock out = PackedBoolean(1, cols_);
    std::memcpy(out.MutableWordRow(0), WordRow(r),
                static_cast<std::size_t>(words_per_row_) *
                    sizeof(std::uint64_t));
    return out;
  }
  DenseBlock out(1, cols_, 0.0);
  std::memcpy(out.mutable_data(), Row(r),
              static_cast<std::size_t>(cols_) * sizeof(double));
  return out;
}

DenseBlock DenseBlock::Transposed() const {
  if (phantom_) {
    return packed_ ? PackedPhantom(cols_, rows_) : Phantom(cols_, rows_);
  }
  if (packed_) {
    DenseBlock out = PackedBoolean(cols_, rows_);
    for (std::int64_t r = 0; r < rows_; ++r) {
      for (std::int64_t w = 0; w < words_per_row_; ++w) {
        std::uint64_t word = WordRow(r)[w];
        while (word != 0) {
          const int bit = std::countr_zero(word);
          word &= word - 1;
          out.SetBit((w << 6) + bit, r, true);
        }
      }
    }
    return out;
  }
  DenseBlock out(cols_, rows_, 0.0);
  // Simple tiled transpose to stay cache-friendly for large blocks.
  constexpr std::int64_t kTile = 64;
  for (std::int64_t r0 = 0; r0 < rows_; r0 += kTile) {
    for (std::int64_t c0 = 0; c0 < cols_; c0 += kTile) {
      const std::int64_t r1 = std::min(rows_, r0 + kTile);
      const std::int64_t c1 = std::min(cols_, c0 + kTile);
      for (std::int64_t r = r0; r < r1; ++r) {
        for (std::int64_t c = c0; c < c1; ++c) {
          out.Set(c, r, At(r, c));
        }
      }
    }
  }
  return out;
}

DenseBlock DenseBlock::SubBlock(std::int64_t r0, std::int64_t c0,
                                std::int64_t h, std::int64_t w) const {
  if (phantom_) return packed_ ? PackedPhantom(h, w) : Phantom(h, w);
  if (packed_) {
    DenseBlock out = PackedBoolean(h, w);
    if ((c0 & 63) == 0) {
      // Word-aligned column offset: copy whole words, mask the ragged tail.
      const std::int64_t src_w0 = c0 >> 6;
      const std::int64_t out_wpr = out.words_per_row_;
      const std::uint64_t tail_mask =
          (w & 63) == 0 ? ~std::uint64_t{0}
                        : (std::uint64_t{1} << (w & 63)) - 1;
      for (std::int64_t r = 0; r < h; ++r) {
        const std::uint64_t* src = WordRow(r0 + r) + src_w0;
        std::uint64_t* dst = out.MutableWordRow(r);
        for (std::int64_t i = 0; i < out_wpr; ++i) dst[i] = src[i];
        dst[out_wpr - 1] &= tail_mask;
      }
    } else {
      for (std::int64_t r = 0; r < h; ++r) {
        for (std::int64_t c = 0; c < w; ++c) {
          if (GetBit(r0 + r, c0 + c)) out.SetBit(r, c, true);
        }
      }
    }
    return out;
  }
  DenseBlock out(h, w, 0.0);
  for (std::int64_t r = 0; r < h; ++r) {
    std::memcpy(out.MutableRow(r), Row(r0 + r) + c0,
                static_cast<std::size_t>(w) * sizeof(double));
  }
  return out;
}

DenseBlock DenseBlock::RowPanel(std::int64_t r0, std::int64_t h) const {
  if (r0 < 0 || h < 0 || r0 + h > rows_) {
    throw std::invalid_argument("RowPanel: row range out of bounds");
  }
  if (phantom_) return packed_ ? PackedPhantom(h, cols_) : Phantom(h, cols_);
  if (packed_) {
    DenseBlock out = PackedBoolean(h, cols_);
    std::memcpy(out.words_.data(), WordRow(r0),
                static_cast<std::size_t>(h * words_per_row_) *
                    sizeof(std::uint64_t));
    return out;
  }
  DenseBlock out(h, cols_, 0.0);
  std::memcpy(out.mutable_data(), Row(r0),
              static_cast<std::size_t>(h * cols_) * sizeof(double));
  return out;
}

void DenseBlock::PasteRowPanel(std::int64_t r0, const DenseBlock& panel) {
  if (panel.cols() != cols_ || r0 < 0 || r0 + panel.rows() > rows_) {
    throw std::invalid_argument("PasteRowPanel: panel does not fit");
  }
  if (phantom_ || panel.is_phantom()) {
    throw std::invalid_argument("PasteRowPanel: phantom operand");
  }
  if (packed_ != panel.packed_) {
    throw std::invalid_argument("PasteRowPanel: packed/dense mismatch");
  }
  if (packed_) {
    std::memcpy(MutableWordRow(r0), panel.words_.data(),
                static_cast<std::size_t>(panel.rows_ * words_per_row_) *
                    sizeof(std::uint64_t));
    return;
  }
  std::memcpy(MutableRow(r0), panel.data(),
              static_cast<std::size_t>(panel.size()) * sizeof(double));
}

bool DenseBlock::AllInfinite() const noexcept {
  if (phantom_) return false;  // unknown structure: never licenses a skip
  if (packed_) return false;   // boolean payload: +inf cannot occur
  for (const double v : data_) {
    if (!std::isinf(v)) return false;
  }
  return true;
}

bool DenseBlock::ApproxEquals(const DenseBlock& other, double tol) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  if (phantom_ || other.phantom_) return phantom_ == other.phantom_;
  return MaxAbsDiff(other) <= tol;
}

double DenseBlock::MaxAbsDiff(const DenseBlock& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return kInf;
  if (phantom_ || other.phantom_) return phantom_ == other.phantom_ ? 0 : kInf;
  double max_diff = 0.0;
  // At() is packed-aware, so a packed block compares equal to its dense 0/1
  // image; the dense/dense case still touches each payload entry once.
  for (std::int64_t r = 0; r < rows_; ++r) {
    for (std::int64_t c = 0; c < cols_; ++c) {
      const double a = At(r, c);
      const double b = other.At(r, c);
      const bool a_inf = std::isinf(a);
      const bool b_inf = std::isinf(b);
      if (a_inf != b_inf) return kInf;
      if (a_inf) continue;
      max_diff = std::max(max_diff, std::fabs(a - b));
    }
  }
  return max_diff;
}

DenseBlock FrontierPanel(std::int64_t rows,
                         const std::vector<std::int64_t>& unit_rows,
                         double zero, double one) {
  DenseBlock out(rows, static_cast<std::int64_t>(unit_rows.size()), zero);
  for (std::size_t j = 0; j < unit_rows.size(); ++j) {
    const std::int64_t r = unit_rows[j];
    if (r < 0 || r >= rows) {
      throw std::invalid_argument("FrontierPanel: unit row out of range");
    }
    out.Set(r, static_cast<std::int64_t>(j), one);
  }
  return out;
}

}  // namespace apspark::linalg
