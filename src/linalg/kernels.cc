#include "linalg/kernels.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "linalg/semiring.h"
#include "linalg/simd.h"
#include "obs/metrics_registry.h"

namespace apspark::linalg {
namespace {

// Always-on kernel-invocation accounting: one sharded-counter increment per
// block-level kernel call, labelled with the resolved ISA, active semiring,
// and tile geometry that actually ran. The registry lookup is memoized in a
// thread-local map, so the steady-state cost is a hash probe plus a relaxed
// atomic add — noise next to any block's O(b^3) work.
enum KernelKind {
  kKernelAccumulate = 0,  // square-tiled accumulate (C ⊕= A ⊗ B)
  kKernelPanel = 1,       // narrow-panel rect micro-kernel
  kKernelClosure = 2,     // in-place Floyd-Warshall / Kleene closure
};

constexpr const char* kKernelKindNames[] = {"accumulate", "panel", "closure"};

obs::Counter& KernelCounter(KernelKind kind, SimdIsa isa,
                            const KernelTuning& tuning) {
  const std::uint64_t key =
      static_cast<std::uint64_t>(kind) |
      (static_cast<std::uint64_t>(isa) << 4) |
      (static_cast<std::uint64_t>(tuning.semiring) << 8) |
      (static_cast<std::uint64_t>(tuning.tile_j) << 16) |
      (static_cast<std::uint64_t>(tuning.tile_k) << 40);
  thread_local std::unordered_map<std::uint64_t, obs::Counter*> memo;
  auto it = memo.find(key);
  if (it == memo.end()) {
    const std::string labels =
        std::string("kernel=\"") + kKernelKindNames[kind] + "\",isa=\"" +
        SimdIsaName(isa) + "\",semiring=\"" + SemiringName(tuning.semiring) +
        "\",tile_j=\"" + std::to_string(tuning.tile_j) + "\",tile_k=\"" +
        std::to_string(tuning.tile_k) + "\"";
    it = memo.emplace(key, &obs::Registry::Global().GetCounter(
                               "kernel_invocations_total", labels))
             .first;
  }
  return *it->second;
}

void CheckProductShapes(const DenseBlock& a, const DenseBlock& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("min-plus product: inner dimensions differ");
  }
}

/// Phantom of the product/update result shape, preserving the packed
/// representation when every operand carries it — so model runs charge
/// packed bytes exactly like real runs.
DenseBlock PhantomLike(std::int64_t rows, std::int64_t cols, bool packed) {
  return packed ? DenseBlock::PackedPhantom(rows, cols)
                : DenseBlock::Phantom(rows, cols);
}

/// Packed operands are boolean-only payloads; mixing them with dense
/// operands in one kernel call is a routing bug, not a computable case.
void CheckUniformRepresentation(bool a_packed, bool b_packed) {
  if (a_packed != b_packed) {
    throw std::invalid_argument("kernel: packed/dense operand mix");
  }
}

void CheckPackedSemiring() {
  if (GetActiveSemiring() != SemiringId::kBoolean) {
    throw std::invalid_argument(
        "kernel: bit-packed blocks require the boolean semiring");
  }
}

/// Number of row stripes to fan a kernel of `m` x `n` output out over, given
/// the tuning thresholds. 1 means "stay sequential".
std::int64_t ParallelStripes(std::int64_t m, std::int64_t n,
                             const KernelTuning& tuning) {
  if (m * n < tuning.parallel_min_elems) return 1;
  const std::int64_t by_grain =
      (m + tuning.parallel_grain_rows - 1) / tuning.parallel_grain_rows;
  const std::int64_t by_threads =
      static_cast<std::int64_t>(KernelThreadPool().num_threads());
  return std::max<std::int64_t>(1, std::min(by_grain, by_threads));
}

// ---------------------------------------------------------------------------
// Semiring-templated scalar/tiled workers
// ---------------------------------------------------------------------------
//
// Every worker is a template over a semiring struct S (linalg/semiring.h).
// The tiled variants reorder only the (+) reduction — candidates
// S::Multiply(a_ik, b_kj) are computed identically, Add is a keep-on-tie
// selection applied in ascending-k order — so every variant produces
// bitwise-identical results under every semiring, and every instantiation
// locks against the scalar oracle in semiring.h.

/// Fixed scalar k-i-j Floyd-Warshall closure on a raw tile (textbook loop).
template <typename S>
void FloydWarshallRawScalar(std::int64_t n, double* a, std::int64_t lda) {
  for (std::int64_t k = 0; k < n; ++k) {
    const double* ak = a + k * lda;
    for (std::int64_t i = 0; i < n; ++i) {
      double* ai = a + i * lda;
      const double aik = ai[k];
      if (S::IsZero(aik)) continue;  // annihilator: no path through k
      for (std::int64_t j = 0; j < n; ++j) {
        ai[j] = S::Add(ai[j], S::Multiply(aik, ak[j]));
      }
    }
  }
}

/// Fixed scalar i-k-j accumulate (the seed's original loop shape).
template <typename S>
void AccumulateRawNaive(std::int64_t m, std::int64_t n, std::int64_t k,
                        const double* a, std::int64_t lda, const double* b,
                        std::int64_t ldb, double* c, std::int64_t ldc) {
  // i-k-j order: the inner loop streams rows of B and C, the semiring
  // analogue of the classic GEMM loop ordering — but unblocked: every row
  // of C streams the whole of B through the cache hierarchy.
  for (std::int64_t i = 0; i < m; ++i) {
    double* ci = c + i * ldc;
    const double* ai = a + i * lda;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double aik = ai[kk];
      if (S::IsZero(aik)) continue;  // no path through kk
      const double* bk = b + kk * ldb;
      for (std::int64_t j = 0; j < n; ++j) {
        ci[j] = S::Add(ci[j], S::Multiply(aik, bk[j]));
      }
    }
  }
}

/// Sequential body of the tiled micro-kernel over a row range [i0, i1).
/// `isa` is the pre-resolved dispatch decision (scalar when an operand
/// shares elements with the output — see AccumulateRawTiled).
template <typename S>
void TiledRows(std::int64_t i0, std::int64_t i1, std::int64_t n,
               std::int64_t k, const double* a, std::int64_t lda,
               const double* b, std::int64_t ldb, double* c, std::int64_t ldc,
               const KernelTuning& tuning, SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAvx512:
      SimdTiledRowsAvx512(S::kId, i0, i1, n, k, a, lda, b, ldb, c, ldc,
                          tuning.tile_j, tuning.tile_k);
      return;
    case SimdIsa::kAvx2:
      SimdTiledRowsAvx2(S::kId, i0, i1, n, k, a, lda, b, ldb, c, ldc,
                        tuning.tile_j, tuning.tile_k);
      return;
    case SimdIsa::kScalar:
      break;  // the portable loops below
  }
  const std::int64_t tj = std::max<std::int64_t>(8, tuning.tile_j);
  const std::int64_t tk = std::max<std::int64_t>(1, tuning.tile_k);
  for (std::int64_t j0 = 0; j0 < n; j0 += tj) {
    const std::int64_t jn = std::min(tj, n - j0);
    for (std::int64_t k0 = 0; k0 < k; k0 += tk) {
      const std::int64_t kn = std::min(tk, k - k0);
      for (std::int64_t i = i0; i < i1; ++i) {
        const double* ai = a + i * lda + k0;
        double* ci = c + i * ldc + j0;
        // Register-blocked over k: four B rows are folded into C per pass,
        // so each C segment is loaded and stored once per four k steps
        // instead of once per step. The Add chain applies the k's in
        // ascending order with keep-on-tie semantics, exactly like the
        // scalar loop, so results are bitwise identical. An annihilator
        // a_ik needs no special case inside a quad (Zero (x) b is Zero and
        // Add(c, Zero) keeps c bitwise, in all four semirings' domains),
        // but an all-annihilator quad is skipped outright — the hoisted
        // guard of the scalar loop, four rows at a time.
        std::int64_t kk = 0;
        for (; kk + 4 <= kn; kk += 4) {
          const double a0 = ai[kk + 0];
          const double a1 = ai[kk + 1];
          const double a2 = ai[kk + 2];
          const double a3 = ai[kk + 3];
          if (S::IsZero(a0) && S::IsZero(a1) && S::IsZero(a2) &&
              S::IsZero(a3)) {
            continue;  // no path through any of these four k's
          }
          const double* b0 = b + (k0 + kk + 0) * ldb + j0;
          const double* b1 = b + (k0 + kk + 1) * ldb + j0;
          const double* b2 = b + (k0 + kk + 2) * ldb + j0;
          const double* b3 = b + (k0 + kk + 3) * ldb + j0;
          // Branch-free selection so the compiler emits vector min/maxpd;
          // exact-row aliasing of c with a B row (in-place phase updates)
          // is safe because every lane reads before it writes.
          for (std::int64_t j = 0; j < jn; ++j) {
            double cj = ci[j];
            cj = S::Add(cj, S::Multiply(a0, b0[j]));
            cj = S::Add(cj, S::Multiply(a1, b1[j]));
            cj = S::Add(cj, S::Multiply(a2, b2[j]));
            cj = S::Add(cj, S::Multiply(a3, b3[j]));
            ci[j] = cj;
          }
        }
        for (; kk < kn; ++kk) {
          const double aik = ai[kk];
          if (S::IsZero(aik)) continue;  // hoisted: no path through kk
          const double* bk = b + (k0 + kk) * ldb + j0;
          for (std::int64_t j = 0; j < jn; ++j) {
            ci[j] = S::Add(ci[j], S::Multiply(aik, bk[j]));
          }
        }
      }
    }
  }
}

/// Widest C row segment the panel micro-kernel holds in a local accumulator.
/// 32 doubles fill four AVX-512 (eight AVX2) registers — enough to vectorize
/// while leaving room for the B row and the candidate products.
constexpr std::int64_t kPanelAccWidth = 32;

/// Panels at most this wide take the accumulator micro-kernel; wider ones
/// fall back to the square-tiled path (whose tile_j/tile_k blocking wins once
/// the B panel no longer fits low cache levels).
constexpr std::int64_t kPanelNarrowWidth = 64;

/// Sequential body of the panel micro-kernel over a row range [i0, i1): the
/// C row segment lives in `acc` across the whole k reduction, so C traffic
/// drops to one load and one store per row. Candidates are applied in the
/// same ascending-k, keep-on-tie order as the scalar loop — bitwise equal.
template <typename S>
void PanelRows(std::int64_t i0, std::int64_t i1, std::int64_t n,
               std::int64_t k, const double* a, std::int64_t lda,
               const double* b, std::int64_t ldb, double* c, std::int64_t ldc,
               SimdIsa isa) {
  switch (isa) {
    case SimdIsa::kAvx512:
      // tile_j >= n and tile_k >= k degenerate the SIMD micro-tile into
      // exactly this kernel's shape: the whole reduction folds into the
      // register accumulator, one C load/store per row strip.
      SimdTiledRowsAvx512(S::kId, i0, i1, n, k, a, lda, b, ldb, c, ldc,
                          /*tile_j=*/n, /*tile_k=*/k);
      return;
    case SimdIsa::kAvx2:
      SimdTiledRowsAvx2(S::kId, i0, i1, n, k, a, lda, b, ldb, c, ldc,
                        /*tile_j=*/n, /*tile_k=*/k);
      return;
    case SimdIsa::kScalar:
      break;  // the portable accumulator loop below
  }
  double acc[kPanelAccWidth];
  for (std::int64_t j0 = 0; j0 < n; j0 += kPanelAccWidth) {
    const std::int64_t jn = std::min(kPanelAccWidth, n - j0);
    for (std::int64_t i = i0; i < i1; ++i) {
      const double* ai = a + i * lda;
      double* ci = c + i * ldc + j0;
      for (std::int64_t j = 0; j < jn; ++j) acc[j] = ci[j];
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const double aik = ai[kk];
        if (S::IsZero(aik)) continue;  // no path through kk
        const double* bk = b + kk * ldb + j0;
        for (std::int64_t j = 0; j < jn; ++j) {
          acc[j] = S::Add(acc[j], S::Multiply(aik, bk[j]));
        }
      }
      for (std::int64_t j = 0; j < jn; ++j) ci[j] = acc[j];
    }
  }
}

/// True when operand [p .. p + (rows-1)*ld + cols) overlaps the output
/// region of C — row striping across host threads is unsafe then (in-place
/// Kleene and phase updates alias operands with their output).
bool OverlapsOutput(const double* p, std::int64_t rows, std::int64_t ld,
                    std::int64_t cols, const double* c, std::int64_t m,
                    std::int64_t ldc, std::int64_t n) {
  const auto lo = reinterpret_cast<std::uintptr_t>(p);
  const auto hi =
      lo + static_cast<std::uintptr_t>((rows - 1) * ld + cols) * sizeof(double);
  const auto clo = reinterpret_cast<std::uintptr_t>(c);
  const auto chi =
      clo + static_cast<std::uintptr_t>((m - 1) * ldc + n) * sizeof(double);
  return lo < chi && clo < hi;
}

/// Element-precise sharing test between operand X (rows_x x cols_x at px,
/// leading dimension ldx) and the output C — the SIMD routing predicate.
/// Address-interval overlap (OverlapsOutput) is too coarse for it: two
/// sub-blocks of one matrix interleave as intervals while touching disjoint
/// elements (the blocked-FW phase-3 updates), and those calls are safe for
/// the register-resident micro-tile. Only genuinely shared elements (the
/// in-place phase-2/Kleene updates) must keep the scalar schedule, whose
/// store cadence the bitwise contract was defined against. Falls back to
/// "shared" whenever the layouts are not commensurate (different leading
/// dimensions, or a column window that wraps a row boundary).
bool SharesElements(const double* px, std::int64_t rows_x, std::int64_t ldx,
                    std::int64_t cols_x, const double* c, std::int64_t m,
                    std::int64_t ldc, std::int64_t n) {
  if (!OverlapsOutput(px, rows_x, ldx, cols_x, c, m, ldc, n)) return false;
  if (ldx != ldc || ldc <= 0) return true;
  // Interval overlap means one allocation in practice, so the pointer
  // difference decomposes into a (row, column) offset of X's origin within
  // C's coordinate frame.
  const std::ptrdiff_t delta = px - c;
  std::ptrdiff_t row_off = delta / ldc;
  std::ptrdiff_t col_off = delta % ldc;
  if (col_off < 0) {
    col_off += ldc;
    row_off -= 1;
  }
  if (col_off + cols_x > ldc) return true;  // wraps a row: assume shared
  const bool rows_overlap = row_off < m && row_off + rows_x > 0;
  const bool cols_overlap = col_off < n;
  return rows_overlap && cols_overlap;
}

/// The per-call dispatch decision of the tiled/panel bodies: the resolved
/// tuning ISA, demoted to scalar when an operand shares elements with the
/// output. The scalar kernel stores C and re-reads B every quad, while the
/// SIMD micro-tile holds C in registers across a whole k chunk — on shared
/// elements the two schedules observe different intermediate values, so
/// aliased in-place updates stay on the scalar path to keep every result
/// reproducible under every ISA.
template <typename S>
SimdIsa ChooseIsa(const KernelTuning& tuning, const double* a, std::int64_t m,
                  std::int64_t lda, std::int64_t k, const double* b,
                  std::int64_t ldb, const double* c, std::int64_t ldc,
                  std::int64_t n) {
  const SimdIsa isa = ResolveSimdIsa(tuning.isa);
  if (isa == SimdIsa::kScalar) return isa;
  if (SharesElements(a, m, lda, k, c, m, ldc, n) ||
      SharesElements(b, k, ldb, n, c, m, ldc, n)) {
    return SimdIsa::kScalar;
  }
  return isa;
}

template <typename S>
void AccumulateRawTiled(std::int64_t m, std::int64_t n, std::int64_t k,
                        const double* a, std::int64_t lda, const double* b,
                        std::int64_t ldb, double* c, std::int64_t ldc,
                        bool parallel) {
  const KernelTuning tuning = GetKernelTuning();
  // Row striping is only safe when no stripe's C rows are another stripe's
  // A/B input (the in-place Kleene and phase updates alias them); overlap
  // forces the sequential path.
  if (parallel && (OverlapsOutput(a, m, lda, k, c, m, ldc, n) ||
                   OverlapsOutput(b, k, ldb, n, c, m, ldc, n))) {
    parallel = false;
  }
  const SimdIsa isa = ChooseIsa<S>(tuning, a, m, lda, k, b, ldb, c, ldc, n);
  KernelCounter(kKernelAccumulate, isa, tuning).Add();
  const std::int64_t stripes = parallel ? ParallelStripes(m, n, tuning) : 1;
  if (stripes <= 1) {
    TiledRows<S>(0, m, n, k, a, lda, b, ldb, c, ldc, tuning, isa);
    return;
  }
  const std::int64_t rows_per_stripe = (m + stripes - 1) / stripes;
  KernelThreadPool().ParallelFor(
      static_cast<std::size_t>(stripes), [&](std::size_t s) {
        const std::int64_t i0 =
            static_cast<std::int64_t>(s) * rows_per_stripe;
        const std::int64_t i1 = std::min(m, i0 + rows_per_stripe);
        if (i0 < i1) {
          TiledRows<S>(i0, i1, n, k, a, lda, b, ldb, c, ldc, tuning, isa);
        }
      });
}

template <typename S>
void PanelRawTiled(std::int64_t m, std::int64_t n, std::int64_t k,
                   const double* a, std::int64_t lda, const double* b,
                   std::int64_t ldb, double* c, std::int64_t ldc,
                   bool parallel) {
  if (n > kPanelNarrowWidth) {
    // Wide panel: the square-tiled kernel's cache blocking is the better
    // shape (and stays bitwise-equal — same ascending-k candidate order).
    AccumulateRawTiled<S>(m, n, k, a, lda, b, ldb, c, ldc, parallel);
    return;
  }
  if (parallel && (OverlapsOutput(a, m, lda, k, c, m, ldc, n) ||
                   OverlapsOutput(b, k, ldb, n, c, m, ldc, n))) {
    parallel = false;
  }
  const KernelTuning tuning = GetKernelTuning();
  const SimdIsa isa = ChooseIsa<S>(tuning, a, m, lda, k, b, ldb, c, ldc, n);
  KernelCounter(kKernelPanel, isa, tuning).Add();
  const std::int64_t stripes = parallel ? ParallelStripes(m, n, tuning) : 1;
  if (stripes <= 1) {
    PanelRows<S>(0, m, n, k, a, lda, b, ldb, c, ldc, isa);
    return;
  }
  const std::int64_t rows_per_stripe = (m + stripes - 1) / stripes;
  KernelThreadPool().ParallelFor(
      static_cast<std::size_t>(stripes), [&](std::size_t s) {
        const std::int64_t i0 =
            static_cast<std::int64_t>(s) * rows_per_stripe;
        const std::int64_t i1 = std::min(m, i0 + rows_per_stripe);
        if (i0 < i1) {
          PanelRows<S>(i0, i1, n, k, a, lda, b, ldb, c, ldc, isa);
        }
      });
}

/// Blocked 3-phase Floyd-Warshall closure over a raw n x n matrix with
/// leading dimension lda. Phase-2/phase-3 tile updates reuse the accumulate
/// micro-kernel; with `parallel` they fan out on the host pool (tiles write
/// disjoint output, so the phases are race-free).
template <typename S>
void BlockedFloydWarshallRaw(std::int64_t n, double* a, std::int64_t lda,
                             std::int64_t block, bool tiled, bool parallel) {
  const std::int64_t q = (n + block - 1) / block;
  auto tile = [&](std::int64_t bi, std::int64_t bj) {
    return a + bi * block * lda + bj * block;
  };
  auto dim = [&](std::int64_t bi) { return std::min(block, n - bi * block); };
  auto update = [&](std::int64_t m2, std::int64_t n2, std::int64_t k2,
                    const double* ta, const double* tb, double* tc) {
    if (tiled) {
      AccumulateRawTiled<S>(m2, n2, k2, ta, lda, tb, lda, tc, lda,
                            /*parallel=*/false);
    } else {
      AccumulateRawNaive<S>(m2, n2, k2, ta, lda, tb, lda, tc, lda);
    }
  };
  for (std::int64_t t = 0; t < q; ++t) {
    const std::int64_t bt = dim(t);
    // Phase 1: close the diagonal tile.
    FloydWarshallRawScalar<S>(bt, tile(t, t), lda);
    // Phase 2: row and column tiles through the diagonal tile.
    auto phase2 = [&](std::int64_t j) {
      if (j == t) return;
      const std::int64_t bj = dim(j);
      // Row tile: A[t][j] = A[t][j] (+) A[t][t] (x) A[t][j].
      update(bt, bj, bt, tile(t, t), tile(t, j), tile(t, j));
      // Column tile: A[j][t] = A[j][t] (+) A[j][t] (x) A[t][t].
      update(bj, bt, bt, tile(j, t), tile(t, t), tile(j, t));
    };
    // Phase 3: remaining tiles through the freshly updated row/column.
    auto phase3 = [&](std::int64_t i) {
      if (i == t) return;
      const std::int64_t bi = dim(i);
      for (std::int64_t j = 0; j < q; ++j) {
        if (j == t) continue;
        update(bi, dim(j), bt, tile(i, t), tile(t, j), tile(i, j));
      }
    };
    if (parallel && q > 1) {
      // Every independent block update of the pivot step is its own
      // stealable task: 2(q-1) row/column panels in phase 2, (q-1)^2 outer
      // blocks in phase 3 — not just q row-level stripes. Small-block
      // layouts (q large, b small) expose q^2 units of work to the pool
      // instead of q, which is what lets them scale.
      ThreadPool& pool = KernelThreadPool();
      pool.ParallelForTasks(
          static_cast<std::size_t>(2 * q), [&](std::size_t s) {
            const std::int64_t j = static_cast<std::int64_t>(s) / 2;
            if (j == t) return;
            const std::int64_t bj = dim(j);
            if ((s & 1) == 0) {
              // Row tile through the diagonal.
              update(bt, bj, bt, tile(t, t), tile(t, j), tile(t, j));
            } else {
              // Column tile through the diagonal.
              update(bj, bt, bt, tile(j, t), tile(t, t), tile(j, t));
            }
          });
      pool.ParallelForTasks(
          static_cast<std::size_t>(q * q), [&](std::size_t s) {
            const std::int64_t i = static_cast<std::int64_t>(s) / q;
            const std::int64_t j = static_cast<std::int64_t>(s) % q;
            if (i == t || j == t) return;
            update(dim(i), dim(j), bt, tile(i, t), tile(t, j), tile(i, j));
          });
    } else {
      for (std::int64_t j = 0; j < q; ++j) phase2(j);
      for (std::int64_t i = 0; i < q; ++i) phase3(i);
    }
  }
}

// ---------------------------------------------------------------------------
// Bit-packed boolean kernels (the word-parallel or/and plane)
// ---------------------------------------------------------------------------
//
// Packed blocks store 64 booleans per word (dense_block.h). One word-or
// processes 64 columns; the (or, and) product c |= a (x) b walks the set
// bits of A's row — exactly the scalar kernel's "skip the annihilator"
// guard, 64 lanes at a time. Or is idempotent and commutative, so candidate
// order cannot matter: equivalence with the dense boolean path is exact by
// construction, which is why one sequential implementation serves all
// registry variants.

/// c |= a (or,and) b over packed blocks.
void BitAccumulate(const DenseBlock& a, const DenseBlock& b, DenseBlock& c) {
  const std::int64_t wpr_b = b.words_per_row();
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    const std::uint64_t* arow = a.WordRow(i);
    std::uint64_t* crow = c.MutableWordRow(i);
    for (std::int64_t w = 0; w < a.words_per_row(); ++w) {
      std::uint64_t word = arow[w];
      while (word != 0) {
        const std::int64_t k = (w << 6) + std::countr_zero(word);
        word &= word - 1;
        const std::uint64_t* brow = b.WordRow(k);
        for (std::int64_t v = 0; v < wpr_b; ++v) crow[v] |= brow[v];
      }
    }
  }
}

/// In-place Floyd-Warshall reachability closure over a packed square block:
/// row_i |= row_k wherever bit (i, k) is set. Updating pivot row k in place
/// is sound because or is idempotent (the same argument the dense closure's
/// static_assert encodes).
void BitClosureRaw(DenseBlock& a) {
  const std::int64_t n = a.rows();
  const std::int64_t wpr = a.words_per_row();
  for (std::int64_t k = 0; k < n; ++k) {
    const std::uint64_t* ak = a.WordRow(k);
    for (std::int64_t i = 0; i < n; ++i) {
      if (!a.GetBit(i, k)) continue;  // no path through k
      std::uint64_t* ai = a.MutableWordRow(i);
      for (std::int64_t w = 0; w < wpr; ++w) ai[w] |= ak[w];
    }
  }
}

/// a |= b element-wise over packed blocks (the boolean MatMin analogue).
void BitElementOrInPlace(DenseBlock& a, const DenseBlock& b) {
  std::uint64_t* pa = a.MutableWordRow(0);
  const std::uint64_t* pb = b.WordRow(0);
  const std::int64_t words = a.rows() * a.words_per_row();
  for (std::int64_t i = 0; i < words; ++i) pa[i] |= pb[i];
}

/// a_ij |= u_i & v_j for packed column vectors u (rows x 1), v (cols x 1):
/// the boolean outer-product update behind 2D Floyd-Warshall.
void BitOuterOrUpdate(DenseBlock& a, const DenseBlock& u,
                      const DenseBlock& v) {
  // Build the v row mask once: bit j of the mask is v_j.
  std::vector<std::uint64_t> mask(
      static_cast<std::size_t>(a.words_per_row()), 0);
  for (std::int64_t j = 0; j < a.cols(); ++j) {
    if (v.GetBit(j, 0)) {
      mask[static_cast<std::size_t>(j >> 6)] |= std::uint64_t{1} << (j & 63);
    }
  }
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    if (!u.GetBit(i, 0)) continue;
    std::uint64_t* ai = a.MutableWordRow(i);
    for (std::int64_t w = 0; w < a.words_per_row(); ++w) ai[w] |= mask[w];
  }
}

}  // namespace

void MinPlusAccumulateRawNaive(std::int64_t m, std::int64_t n, std::int64_t k,
                               const double* a, std::int64_t lda,
                               const double* b, std::int64_t ldb, double* c,
                               std::int64_t ldc) {
  WithSemiring(GetActiveSemiring(), [&](auto s) {
    using S = decltype(s);
    AccumulateRawNaive<S>(m, n, k, a, lda, b, ldb, c, ldc);
  });
}

void MinPlusAccumulateRawTiled(std::int64_t m, std::int64_t n, std::int64_t k,
                               const double* a, std::int64_t lda,
                               const double* b, std::int64_t ldb, double* c,
                               std::int64_t ldc, bool parallel) {
  WithSemiring(GetActiveSemiring(), [&](auto s) {
    using S = decltype(s);
    AccumulateRawTiled<S>(m, n, k, a, lda, b, ldb, c, ldc, parallel);
  });
}

void MinPlusPanelRawTiled(std::int64_t m, std::int64_t n, std::int64_t k,
                          const double* a, std::int64_t lda, const double* b,
                          std::int64_t ldb, double* c, std::int64_t ldc,
                          bool parallel) {
  WithSemiring(GetActiveSemiring(), [&](auto s) {
    using S = decltype(s);
    PanelRawTiled<S>(m, n, k, a, lda, b, ldb, c, ldc, parallel);
  });
}

void MinPlusAccumulateRaw(std::int64_t m, std::int64_t n, std::int64_t k,
                          const double* a, std::int64_t lda, const double* b,
                          std::int64_t ldb, double* c, std::int64_t ldc) {
  switch (GetKernelVariant()) {
    case KernelVariant::kNaive:
      MinPlusAccumulateRawNaive(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case KernelVariant::kTiled:
      MinPlusAccumulateRawTiled(m, n, k, a, lda, b, ldb, c, ldc,
                                /*parallel=*/false);
      return;
    case KernelVariant::kTiledParallel:
      MinPlusAccumulateRawTiled(m, n, k, a, lda, b, ldb, c, ldc,
                                /*parallel=*/true);
      return;
  }
}

DenseBlock MinPlusProduct(const DenseBlock& a, const DenseBlock& b) {
  CheckProductShapes(a, b);
  if (a.is_phantom() || b.is_phantom()) {
    return PhantomLike(a.rows(), b.cols(), a.is_packed() && b.is_packed());
  }
  CheckUniformRepresentation(a.is_packed(), b.is_packed());
  if (a.is_packed()) {
    CheckPackedSemiring();
    DenseBlock c = DenseBlock::PackedBoolean(a.rows(), b.cols());
    BitAccumulate(a, b, c);
    return c;
  }
  DenseBlock c(a.rows(), b.cols(), SemiringZeroValue(GetActiveSemiring()));
  MinPlusAccumulateRaw(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                       b.data(), b.cols(), c.mutable_data(), c.cols());
  return c;
}

void MinPlusUpdate(const DenseBlock& a, const DenseBlock& b, DenseBlock& c) {
  CheckProductShapes(a, b);
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument("min-plus update: output shape mismatch");
  }
  if (a.is_phantom() || b.is_phantom() || c.is_phantom()) {
    c = PhantomLike(a.rows(), b.cols(),
                    a.is_packed() && b.is_packed() && c.is_packed());
    return;
  }
  CheckUniformRepresentation(a.is_packed(), b.is_packed());
  CheckUniformRepresentation(a.is_packed(), c.is_packed());
  if (a.is_packed()) {
    CheckPackedSemiring();
    BitAccumulate(a, b, c);
    return;
  }
  MinPlusAccumulateRaw(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                       b.data(), b.cols(), c.mutable_data(), c.cols());
}

void MinPlusUpdateRect(const DenseBlock& a, const DenseBlock& p,
                       DenseBlock& c) {
  CheckProductShapes(a, p);
  if (c.rows() != a.rows() || c.cols() != p.cols()) {
    throw std::invalid_argument("min-plus rect update: output shape mismatch");
  }
  if (a.is_phantom() || p.is_phantom() || c.is_phantom()) {
    c = PhantomLike(a.rows(), p.cols(),
                    a.is_packed() && p.is_packed() && c.is_packed());
    return;
  }
  CheckUniformRepresentation(a.is_packed(), p.is_packed());
  CheckUniformRepresentation(a.is_packed(), c.is_packed());
  if (a.is_packed()) {
    CheckPackedSemiring();
    BitAccumulate(a, p, c);
    return;
  }
  switch (GetKernelVariant()) {
    case KernelVariant::kNaive:
      MinPlusAccumulateRawNaive(a.rows(), p.cols(), a.cols(), a.data(),
                                a.cols(), p.data(), p.cols(),
                                c.mutable_data(), c.cols());
      return;
    case KernelVariant::kTiled:
      MinPlusPanelRawTiled(a.rows(), p.cols(), a.cols(), a.data(), a.cols(),
                           p.data(), p.cols(), c.mutable_data(), c.cols(),
                           /*parallel=*/false);
      return;
    case KernelVariant::kTiledParallel:
      MinPlusPanelRawTiled(a.rows(), p.cols(), a.cols(), a.data(), a.cols(),
                           p.data(), p.cols(), c.mutable_data(), c.cols(),
                           /*parallel=*/true);
      return;
  }
}

DenseBlock ElementMin(const DenseBlock& a, const DenseBlock& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("element-min: shape mismatch");
  }
  if (a.is_phantom() || b.is_phantom()) {
    return PhantomLike(a.rows(), a.cols(), a.is_packed() && b.is_packed());
  }
  DenseBlock out = a;
  ElementMinInPlace(out, b);
  return out;
}

void ElementMinInPlace(DenseBlock& a, const DenseBlock& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("element-min: shape mismatch");
  }
  if (a.is_phantom() || b.is_phantom()) {
    a = PhantomLike(a.rows(), a.cols(), a.is_packed() && b.is_packed());
    return;
  }
  CheckUniformRepresentation(a.is_packed(), b.is_packed());
  if (a.is_packed()) {
    CheckPackedSemiring();
    BitElementOrInPlace(a, b);
    return;
  }
  WithSemiring(GetActiveSemiring(), [&](auto s) {
    using S = decltype(s);
    double* pa = a.mutable_data();
    const double* pb = b.data();
    const std::int64_t n = a.size();
    for (std::int64_t i = 0; i < n; ++i) pa[i] = S::Add(pa[i], pb[i]);
  });
}

void FloydWarshallRaw(std::int64_t n, double* a, std::int64_t lda) {
  const KernelTuning tuning = GetKernelTuning();
  KernelCounter(kKernelClosure, ResolveSimdIsa(tuning.isa), tuning).Add();
  WithSemiring(tuning.semiring, [&](auto s) {
    using S = decltype(s);
    switch (tuning.variant) {
      case KernelVariant::kNaive:
        FloydWarshallRawScalar<S>(n, a, lda);
        return;
      case KernelVariant::kTiled:
      case KernelVariant::kTiledParallel:
        if (n <= tuning.fw_block) {
          FloydWarshallRawScalar<S>(n, a, lda);
          return;
        }
        BlockedFloydWarshallRaw<S>(
            n, a, lda, tuning.fw_block, /*tiled=*/true,
            tuning.variant == KernelVariant::kTiledParallel);
        return;
    }
  });
}

void FloydWarshallInPlace(DenseBlock& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Floyd-Warshall: block must be square");
  }
  if (a.is_phantom()) return;  // phantom stays phantom, shape unchanged
  if (a.is_packed()) {
    CheckPackedSemiring();
    BitClosureRaw(a);
    return;
  }
  FloydWarshallRaw(a.rows(), a.mutable_data(), a.cols());
}

void ReferenceFloydWarshall(DenseBlock& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Floyd-Warshall: block must be square");
  }
  if (a.is_phantom()) return;
  FloydWarshallRawScalar<MinPlusSemiring>(a.rows(), a.mutable_data(),
                                          a.cols());
}

void OuterSumMinUpdate(DenseBlock& a, const DenseBlock& u,
                       const DenseBlock& v) {
  if (u.rows() != a.rows() || v.rows() != a.cols() || u.cols() != 1 ||
      v.cols() != 1) {
    throw std::invalid_argument("outer-sum update: vector shape mismatch");
  }
  if (a.is_phantom() || u.is_phantom() || v.is_phantom()) {
    a = PhantomLike(a.rows(), a.cols(),
                    a.is_packed() && u.is_packed() && v.is_packed());
    return;
  }
  CheckUniformRepresentation(a.is_packed(), u.is_packed());
  CheckUniformRepresentation(a.is_packed(), v.is_packed());
  if (a.is_packed()) {
    CheckPackedSemiring();
    BitOuterOrUpdate(a, u, v);
    return;
  }
  WithSemiring(GetActiveSemiring(), [&](auto s) {
    using S = decltype(s);
    const double* pu = u.data();
    const double* pv = v.data();
    for (std::int64_t i = 0; i < a.rows(); ++i) {
      const double ui = pu[i];
      if (S::IsZero(ui)) continue;
      double* ai = a.MutableRow(i);
      for (std::int64_t j = 0; j < a.cols(); ++j) {
        ai[j] = S::Add(ai[j], S::Multiply(ui, pv[j]));
      }
    }
  });
}

void BlockedFloydWarshall(DenseBlock& a, std::int64_t block_size) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("blocked Floyd-Warshall: matrix must be square");
  }
  if (block_size <= 0) {
    throw std::invalid_argument("blocked Floyd-Warshall: block size must be > 0");
  }
  if (a.is_phantom()) return;
  if (a.is_packed()) {
    // The word-parallel closure is already the fast shape for packed
    // reachability; block decomposition would only re-tile word-ors.
    CheckPackedSemiring();
    BitClosureRaw(a);
    return;
  }
  const KernelVariant variant = GetKernelVariant();
  WithSemiring(GetActiveSemiring(), [&](auto s) {
    using S = decltype(s);
    BlockedFloydWarshallRaw<S>(a.rows(), a.mutable_data(), a.cols(),
                               block_size, variant != KernelVariant::kNaive,
                               variant == KernelVariant::kTiledParallel);
  });
}

}  // namespace apspark::linalg
