#include "linalg/kernels.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace apspark::linalg {
namespace {

void CheckProductShapes(const DenseBlock& a, const DenseBlock& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("min-plus product: inner dimensions differ");
  }
}

}  // namespace

void MinPlusAccumulateRaw(std::int64_t m, std::int64_t n, std::int64_t k,
                          const double* a, std::int64_t lda, const double* b,
                          std::int64_t ldb, double* c, std::int64_t ldc) {
  // i-k-j order: the inner loop streams rows of B and C, which vectorizes
  // well and is the min-plus analogue of the classic GEMM loop ordering.
  for (std::int64_t i = 0; i < m; ++i) {
    double* ci = c + i * ldc;
    const double* ai = a + i * lda;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double aik = ai[kk];
      if (std::isinf(aik)) continue;  // no path through kk
      const double* bk = b + kk * ldb;
      for (std::int64_t j = 0; j < n; ++j) {
        const double via = aik + bk[j];
        if (via < ci[j]) ci[j] = via;
      }
    }
  }
}

DenseBlock MinPlusProduct(const DenseBlock& a, const DenseBlock& b) {
  CheckProductShapes(a, b);
  if (a.is_phantom() || b.is_phantom()) {
    return DenseBlock::Phantom(a.rows(), b.cols());
  }
  DenseBlock c(a.rows(), b.cols(), kInf);
  MinPlusAccumulateRaw(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                       b.data(), b.cols(), c.mutable_data(), c.cols());
  return c;
}

void MinPlusAccumulate(const DenseBlock& a, const DenseBlock& b,
                       DenseBlock& c) {
  CheckProductShapes(a, b);
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument("min-plus accumulate: output shape mismatch");
  }
  if (a.is_phantom() || b.is_phantom() || c.is_phantom()) {
    c = DenseBlock::Phantom(a.rows(), b.cols());
    return;
  }
  MinPlusAccumulateRaw(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                       b.data(), b.cols(), c.mutable_data(), c.cols());
}

DenseBlock ElementMin(const DenseBlock& a, const DenseBlock& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("element-min: shape mismatch");
  }
  if (a.is_phantom() || b.is_phantom()) {
    return DenseBlock::Phantom(a.rows(), a.cols());
  }
  DenseBlock out = a;
  ElementMinInPlace(out, b);
  return out;
}

void ElementMinInPlace(DenseBlock& a, const DenseBlock& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("element-min: shape mismatch");
  }
  if (a.is_phantom() || b.is_phantom()) {
    a = DenseBlock::Phantom(a.rows(), a.cols());
    return;
  }
  double* pa = a.mutable_data();
  const double* pb = b.data();
  const std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) pa[i] = std::min(pa[i], pb[i]);
}

void FloydWarshallRaw(std::int64_t n, double* a, std::int64_t lda) {
  for (std::int64_t k = 0; k < n; ++k) {
    const double* ak = a + k * lda;
    for (std::int64_t i = 0; i < n; ++i) {
      double* ai = a + i * lda;
      const double aik = ai[k];
      if (std::isinf(aik)) continue;
      for (std::int64_t j = 0; j < n; ++j) {
        const double via = aik + ak[j];
        if (via < ai[j]) ai[j] = via;
      }
    }
  }
}

void FloydWarshallInPlace(DenseBlock& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Floyd-Warshall: block must be square");
  }
  if (a.is_phantom()) return;  // phantom stays phantom, shape unchanged
  FloydWarshallRaw(a.rows(), a.mutable_data(), a.cols());
}

void NaiveFloydWarshall(DenseBlock& a) { FloydWarshallInPlace(a); }

void OuterSumMinUpdate(DenseBlock& a, const DenseBlock& u,
                       const DenseBlock& v) {
  if (u.rows() != a.rows() || v.rows() != a.cols() || u.cols() != 1 ||
      v.cols() != 1) {
    throw std::invalid_argument("outer-sum update: vector shape mismatch");
  }
  if (a.is_phantom() || u.is_phantom() || v.is_phantom()) {
    a = DenseBlock::Phantom(a.rows(), a.cols());
    return;
  }
  const double* pu = u.data();
  const double* pv = v.data();
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    const double ui = pu[i];
    if (std::isinf(ui)) continue;
    double* ai = a.MutableRow(i);
    for (std::int64_t j = 0; j < a.cols(); ++j) {
      const double via = ui + pv[j];
      if (via < ai[j]) ai[j] = via;
    }
  }
}

void BlockedFloydWarshall(DenseBlock& a, std::int64_t block_size) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("blocked Floyd-Warshall: matrix must be square");
  }
  if (block_size <= 0) {
    throw std::invalid_argument("blocked Floyd-Warshall: block size must be > 0");
  }
  if (a.is_phantom()) return;
  const std::int64_t n = a.rows();
  double* base = a.mutable_data();
  const std::int64_t ld = n;
  auto tile = [&](std::int64_t bi, std::int64_t bj) {
    return base + bi * block_size * ld + bj * block_size;
  };
  auto dim = [&](std::int64_t bi) {
    return std::min(block_size, n - bi * block_size);
  };
  const std::int64_t q = (n + block_size - 1) / block_size;
  for (std::int64_t t = 0; t < q; ++t) {
    const std::int64_t bt = dim(t);
    // Phase 1: close the diagonal tile.
    FloydWarshallRaw(bt, tile(t, t), ld);
    // Phase 2: row and column tiles through the diagonal tile.
    for (std::int64_t j = 0; j < q; ++j) {
      if (j == t) continue;
      const std::int64_t bj = dim(j);
      // Row tile: A[t][j] = min(A[t][j], A[t][t] (min,+) A[t][j]).
      MinPlusAccumulateRaw(bt, bj, bt, tile(t, t), ld, tile(t, j), ld,
                           tile(t, j), ld);
      // Column tile: A[j][t] = min(A[j][t], A[j][t] (min,+) A[t][t]).
      MinPlusAccumulateRaw(bj, bt, bt, tile(j, t), ld, tile(t, t), ld,
                           tile(j, t), ld);
    }
    // Phase 3: remaining tiles through the freshly updated row/column.
    for (std::int64_t i = 0; i < q; ++i) {
      if (i == t) continue;
      const std::int64_t bi = dim(i);
      for (std::int64_t j = 0; j < q; ++j) {
        if (j == t) continue;
        const std::int64_t bj = dim(j);
        MinPlusAccumulateRaw(bi, bj, bt, tile(i, t), ld, tile(t, j), ld,
                             tile(i, j), ld);
      }
    }
  }
}

}  // namespace apspark::linalg
