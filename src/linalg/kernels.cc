#include "linalg/kernels.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "common/thread_pool.h"

namespace apspark::linalg {
namespace {

void CheckProductShapes(const DenseBlock& a, const DenseBlock& b) {
  if (a.cols() != b.rows()) {
    throw std::invalid_argument("min-plus product: inner dimensions differ");
  }
}

/// Number of row stripes to fan a kernel of `m` x `n` output out over, given
/// the tuning thresholds. 1 means "stay sequential".
std::int64_t ParallelStripes(std::int64_t m, std::int64_t n,
                             const KernelTuning& tuning) {
  if (m * n < tuning.parallel_min_elems) return 1;
  const std::int64_t by_grain =
      (m + tuning.parallel_grain_rows - 1) / tuning.parallel_grain_rows;
  const std::int64_t by_threads =
      static_cast<std::int64_t>(KernelThreadPool().num_threads());
  return std::max<std::int64_t>(1, std::min(by_grain, by_threads));
}

/// Fixed scalar k-i-j Floyd-Warshall on a raw tile (the textbook loop).
void FloydWarshallRawScalar(std::int64_t n, double* a, std::int64_t lda) {
  for (std::int64_t k = 0; k < n; ++k) {
    const double* ak = a + k * lda;
    for (std::int64_t i = 0; i < n; ++i) {
      double* ai = a + i * lda;
      const double aik = ai[k];
      if (std::isinf(aik)) continue;
      for (std::int64_t j = 0; j < n; ++j) {
        const double via = aik + ak[j];
        if (via < ai[j]) ai[j] = via;
      }
    }
  }
}

/// Sequential body of the tiled micro-kernel over a row range [i0, i1).
void MinPlusTiledRows(std::int64_t i0, std::int64_t i1, std::int64_t n,
                      std::int64_t k, const double* a, std::int64_t lda,
                      const double* b, std::int64_t ldb, double* c,
                      std::int64_t ldc, const KernelTuning& tuning) {
  const std::int64_t tj = std::max<std::int64_t>(8, tuning.tile_j);
  const std::int64_t tk = std::max<std::int64_t>(1, tuning.tile_k);
  for (std::int64_t j0 = 0; j0 < n; j0 += tj) {
    const std::int64_t jn = std::min(tj, n - j0);
    for (std::int64_t k0 = 0; k0 < k; k0 += tk) {
      const std::int64_t kn = std::min(tk, k - k0);
      for (std::int64_t i = i0; i < i1; ++i) {
        const double* ai = a + i * lda + k0;
        double* ci = c + i * ldc + j0;
        // Register-blocked over k: four B rows are folded into C per pass,
        // so each C segment is loaded and stored once per four k steps
        // instead of once per step. The min chain applies the k's in
        // ascending order with keep-on-tie semantics, exactly like the
        // scalar loop, so results are bitwise identical. a_ik = +inf needs
        // no special case inside a quad (inf + w >= c is a no-op; weights
        // are never -inf), but an all-infinite quad is skipped outright —
        // the hoisted guard of the scalar loop, four rows at a time.
        std::int64_t kk = 0;
        for (; kk + 4 <= kn; kk += 4) {
          const double a0 = ai[kk + 0];
          const double a1 = ai[kk + 1];
          const double a2 = ai[kk + 2];
          const double a3 = ai[kk + 3];
          if (std::isinf(a0) && std::isinf(a1) && std::isinf(a2) &&
              std::isinf(a3)) {
            continue;  // no path through any of these four k's
          }
          const double* b0 = b + (k0 + kk + 0) * ldb + j0;
          const double* b1 = b + (k0 + kk + 1) * ldb + j0;
          const double* b2 = b + (k0 + kk + 2) * ldb + j0;
          const double* b3 = b + (k0 + kk + 3) * ldb + j0;
          // Branch-free min so the compiler emits vector minpd; exact-row
          // aliasing of c with a B row (in-place phase updates) is safe
          // because every lane reads before it writes.
          for (std::int64_t j = 0; j < jn; ++j) {
            double cj = ci[j];
            const double v0 = a0 + b0[j];
            cj = v0 < cj ? v0 : cj;
            const double v1 = a1 + b1[j];
            cj = v1 < cj ? v1 : cj;
            const double v2 = a2 + b2[j];
            cj = v2 < cj ? v2 : cj;
            const double v3 = a3 + b3[j];
            cj = v3 < cj ? v3 : cj;
            ci[j] = cj;
          }
        }
        for (; kk < kn; ++kk) {
          const double aik = ai[kk];
          if (std::isinf(aik)) continue;  // hoisted: no path through kk
          const double* bk = b + (k0 + kk) * ldb + j0;
          for (std::int64_t j = 0; j < jn; ++j) {
            const double via = aik + bk[j];
            ci[j] = via < ci[j] ? via : ci[j];
          }
        }
      }
    }
  }
}

/// Widest C row segment the panel micro-kernel holds in a local accumulator.
/// 32 doubles fill four AVX-512 (eight AVX2) registers — enough to vectorize
/// while leaving room for the B row and the candidate sums.
constexpr std::int64_t kPanelAccWidth = 32;

/// Panels at most this wide take the accumulator micro-kernel; wider ones
/// fall back to the square-tiled path (whose tile_j/tile_k blocking wins once
/// the B panel no longer fits low cache levels).
constexpr std::int64_t kPanelNarrowWidth = 64;

/// Sequential body of the panel micro-kernel over a row range [i0, i1): the
/// C row segment lives in `acc` across the whole k reduction, so C traffic
/// drops to one load and one store per row. Candidates are applied in the
/// same ascending-k, keep-on-tie order as the scalar loop — bitwise equal.
void MinPlusPanelRows(std::int64_t i0, std::int64_t i1, std::int64_t n,
                      std::int64_t k, const double* a, std::int64_t lda,
                      const double* b, std::int64_t ldb, double* c,
                      std::int64_t ldc) {
  double acc[kPanelAccWidth];
  for (std::int64_t j0 = 0; j0 < n; j0 += kPanelAccWidth) {
    const std::int64_t jn = std::min(kPanelAccWidth, n - j0);
    for (std::int64_t i = i0; i < i1; ++i) {
      const double* ai = a + i * lda;
      double* ci = c + i * ldc + j0;
      for (std::int64_t j = 0; j < jn; ++j) acc[j] = ci[j];
      for (std::int64_t kk = 0; kk < k; ++kk) {
        const double aik = ai[kk];
        if (std::isinf(aik)) continue;  // no path through kk
        const double* bk = b + kk * ldb + j0;
        for (std::int64_t j = 0; j < jn; ++j) {
          const double via = aik + bk[j];
          acc[j] = via < acc[j] ? via : acc[j];
        }
      }
      for (std::int64_t j = 0; j < jn; ++j) ci[j] = acc[j];
    }
  }
}

/// Blocked 3-phase Floyd-Warshall over a raw n x n matrix with leading
/// dimension lda. Phase-2/phase-3 tile updates reuse the min-plus
/// micro-kernel; with `parallel` they fan out on the host pool (tiles write
/// disjoint output, so the phases are race-free).
void BlockedFloydWarshallRaw(std::int64_t n, double* a, std::int64_t lda,
                             std::int64_t block, bool tiled, bool parallel) {
  const std::int64_t q = (n + block - 1) / block;
  auto tile = [&](std::int64_t bi, std::int64_t bj) {
    return a + bi * block * lda + bj * block;
  };
  auto dim = [&](std::int64_t bi) { return std::min(block, n - bi * block); };
  auto update = [&](std::int64_t m2, std::int64_t n2, std::int64_t k2,
                    const double* ta, const double* tb, double* tc) {
    if (tiled) {
      MinPlusAccumulateRawTiled(m2, n2, k2, ta, lda, tb, lda, tc, lda,
                                /*parallel=*/false);
    } else {
      MinPlusAccumulateRawNaive(m2, n2, k2, ta, lda, tb, lda, tc, lda);
    }
  };
  for (std::int64_t t = 0; t < q; ++t) {
    const std::int64_t bt = dim(t);
    // Phase 1: close the diagonal tile.
    FloydWarshallRawScalar(bt, tile(t, t), lda);
    // Phase 2: row and column tiles through the diagonal tile.
    auto phase2 = [&](std::int64_t j) {
      if (j == t) return;
      const std::int64_t bj = dim(j);
      // Row tile: A[t][j] = min(A[t][j], A[t][t] (min,+) A[t][j]).
      update(bt, bj, bt, tile(t, t), tile(t, j), tile(t, j));
      // Column tile: A[j][t] = min(A[j][t], A[j][t] (min,+) A[t][t]).
      update(bj, bt, bt, tile(j, t), tile(t, t), tile(j, t));
    };
    // Phase 3: remaining tiles through the freshly updated row/column.
    auto phase3 = [&](std::int64_t i) {
      if (i == t) return;
      const std::int64_t bi = dim(i);
      for (std::int64_t j = 0; j < q; ++j) {
        if (j == t) continue;
        update(bi, dim(j), bt, tile(i, t), tile(t, j), tile(i, j));
      }
    };
    if (parallel && q > 1) {
      // Every independent block update of the pivot step is its own
      // stealable task: 2(q-1) row/column panels in phase 2, (q-1)^2 outer
      // blocks in phase 3 — not just q row-level stripes. Small-block
      // layouts (q large, b small) expose q^2 units of work to the pool
      // instead of q, which is what lets them scale.
      ThreadPool& pool = KernelThreadPool();
      pool.ParallelForTasks(
          static_cast<std::size_t>(2 * q), [&](std::size_t s) {
            const std::int64_t j = static_cast<std::int64_t>(s) / 2;
            if (j == t) return;
            const std::int64_t bj = dim(j);
            if ((s & 1) == 0) {
              // Row tile through the diagonal.
              update(bt, bj, bt, tile(t, t), tile(t, j), tile(t, j));
            } else {
              // Column tile through the diagonal.
              update(bj, bt, bt, tile(j, t), tile(t, t), tile(j, t));
            }
          });
      pool.ParallelForTasks(
          static_cast<std::size_t>(q * q), [&](std::size_t s) {
            const std::int64_t i = static_cast<std::int64_t>(s) / q;
            const std::int64_t j = static_cast<std::int64_t>(s) % q;
            if (i == t || j == t) return;
            update(dim(i), dim(j), bt, tile(i, t), tile(t, j), tile(i, j));
          });
    } else {
      for (std::int64_t j = 0; j < q; ++j) phase2(j);
      for (std::int64_t i = 0; i < q; ++i) phase3(i);
    }
  }
}

/// True when operand [p .. p + (rows-1)*ld + cols) overlaps the output
/// region of C — row striping across host threads is unsafe then (in-place
/// Kleene and phase updates alias operands with their output).
bool OverlapsOutput(const double* p, std::int64_t rows, std::int64_t ld,
                    std::int64_t cols, const double* c, std::int64_t m,
                    std::int64_t ldc, std::int64_t n) {
  const auto lo = reinterpret_cast<std::uintptr_t>(p);
  const auto hi =
      lo + static_cast<std::uintptr_t>((rows - 1) * ld + cols) * sizeof(double);
  const auto clo = reinterpret_cast<std::uintptr_t>(c);
  const auto chi =
      clo + static_cast<std::uintptr_t>((m - 1) * ldc + n) * sizeof(double);
  return lo < chi && clo < hi;
}

}  // namespace

void MinPlusAccumulateRawNaive(std::int64_t m, std::int64_t n, std::int64_t k,
                               const double* a, std::int64_t lda,
                               const double* b, std::int64_t ldb, double* c,
                               std::int64_t ldc) {
  // i-k-j order: the inner loop streams rows of B and C, the min-plus
  // analogue of the classic GEMM loop ordering — but unblocked: every row
  // of C streams the whole of B through the cache hierarchy.
  for (std::int64_t i = 0; i < m; ++i) {
    double* ci = c + i * ldc;
    const double* ai = a + i * lda;
    for (std::int64_t kk = 0; kk < k; ++kk) {
      const double aik = ai[kk];
      if (std::isinf(aik)) continue;  // no path through kk
      const double* bk = b + kk * ldb;
      for (std::int64_t j = 0; j < n; ++j) {
        const double via = aik + bk[j];
        if (via < ci[j]) ci[j] = via;
      }
    }
  }
}

void MinPlusAccumulateRawTiled(std::int64_t m, std::int64_t n, std::int64_t k,
                               const double* a, std::int64_t lda,
                               const double* b, std::int64_t ldb, double* c,
                               std::int64_t ldc, bool parallel) {
  const KernelTuning tuning = GetKernelTuning();
  // Row striping is only safe when no stripe's C rows are another stripe's
  // A/B input (the in-place Kleene and phase updates alias them); overlap
  // forces the sequential path.
  if (parallel && (OverlapsOutput(a, m, lda, k, c, m, ldc, n) ||
                   OverlapsOutput(b, k, ldb, n, c, m, ldc, n))) {
    parallel = false;
  }
  const std::int64_t stripes = parallel ? ParallelStripes(m, n, tuning) : 1;
  if (stripes <= 1) {
    MinPlusTiledRows(0, m, n, k, a, lda, b, ldb, c, ldc, tuning);
    return;
  }
  const std::int64_t rows_per_stripe = (m + stripes - 1) / stripes;
  KernelThreadPool().ParallelFor(
      static_cast<std::size_t>(stripes), [&](std::size_t s) {
        const std::int64_t i0 =
            static_cast<std::int64_t>(s) * rows_per_stripe;
        const std::int64_t i1 = std::min(m, i0 + rows_per_stripe);
        if (i0 < i1) {
          MinPlusTiledRows(i0, i1, n, k, a, lda, b, ldb, c, ldc, tuning);
        }
      });
}

void MinPlusPanelRawTiled(std::int64_t m, std::int64_t n, std::int64_t k,
                          const double* a, std::int64_t lda, const double* b,
                          std::int64_t ldb, double* c, std::int64_t ldc,
                          bool parallel) {
  if (n > kPanelNarrowWidth) {
    // Wide panel: the square-tiled kernel's cache blocking is the better
    // shape (and stays bitwise-equal — same ascending-k candidate order).
    MinPlusAccumulateRawTiled(m, n, k, a, lda, b, ldb, c, ldc, parallel);
    return;
  }
  if (parallel && (OverlapsOutput(a, m, lda, k, c, m, ldc, n) ||
                   OverlapsOutput(b, k, ldb, n, c, m, ldc, n))) {
    parallel = false;
  }
  const KernelTuning tuning = GetKernelTuning();
  const std::int64_t stripes = parallel ? ParallelStripes(m, n, tuning) : 1;
  if (stripes <= 1) {
    MinPlusPanelRows(0, m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  const std::int64_t rows_per_stripe = (m + stripes - 1) / stripes;
  KernelThreadPool().ParallelFor(
      static_cast<std::size_t>(stripes), [&](std::size_t s) {
        const std::int64_t i0 =
            static_cast<std::int64_t>(s) * rows_per_stripe;
        const std::int64_t i1 = std::min(m, i0 + rows_per_stripe);
        if (i0 < i1) {
          MinPlusPanelRows(i0, i1, n, k, a, lda, b, ldb, c, ldc);
        }
      });
}

void MinPlusAccumulateRaw(std::int64_t m, std::int64_t n, std::int64_t k,
                          const double* a, std::int64_t lda, const double* b,
                          std::int64_t ldb, double* c, std::int64_t ldc) {
  switch (GetKernelVariant()) {
    case KernelVariant::kNaive:
      MinPlusAccumulateRawNaive(m, n, k, a, lda, b, ldb, c, ldc);
      return;
    case KernelVariant::kTiled:
      MinPlusAccumulateRawTiled(m, n, k, a, lda, b, ldb, c, ldc,
                                /*parallel=*/false);
      return;
    case KernelVariant::kTiledParallel:
      MinPlusAccumulateRawTiled(m, n, k, a, lda, b, ldb, c, ldc,
                                /*parallel=*/true);
      return;
  }
}

DenseBlock MinPlusProduct(const DenseBlock& a, const DenseBlock& b) {
  CheckProductShapes(a, b);
  if (a.is_phantom() || b.is_phantom()) {
    return DenseBlock::Phantom(a.rows(), b.cols());
  }
  DenseBlock c(a.rows(), b.cols(), kInf);
  MinPlusAccumulateRaw(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                       b.data(), b.cols(), c.mutable_data(), c.cols());
  return c;
}

void MinPlusUpdate(const DenseBlock& a, const DenseBlock& b, DenseBlock& c) {
  CheckProductShapes(a, b);
  if (c.rows() != a.rows() || c.cols() != b.cols()) {
    throw std::invalid_argument("min-plus update: output shape mismatch");
  }
  if (a.is_phantom() || b.is_phantom() || c.is_phantom()) {
    c = DenseBlock::Phantom(a.rows(), b.cols());
    return;
  }
  MinPlusAccumulateRaw(a.rows(), b.cols(), a.cols(), a.data(), a.cols(),
                       b.data(), b.cols(), c.mutable_data(), c.cols());
}

void MinPlusUpdateRect(const DenseBlock& a, const DenseBlock& p,
                       DenseBlock& c) {
  CheckProductShapes(a, p);
  if (c.rows() != a.rows() || c.cols() != p.cols()) {
    throw std::invalid_argument("min-plus rect update: output shape mismatch");
  }
  if (a.is_phantom() || p.is_phantom() || c.is_phantom()) {
    c = DenseBlock::Phantom(a.rows(), p.cols());
    return;
  }
  switch (GetKernelVariant()) {
    case KernelVariant::kNaive:
      MinPlusAccumulateRawNaive(a.rows(), p.cols(), a.cols(), a.data(),
                                a.cols(), p.data(), p.cols(),
                                c.mutable_data(), c.cols());
      return;
    case KernelVariant::kTiled:
      MinPlusPanelRawTiled(a.rows(), p.cols(), a.cols(), a.data(), a.cols(),
                           p.data(), p.cols(), c.mutable_data(), c.cols(),
                           /*parallel=*/false);
      return;
    case KernelVariant::kTiledParallel:
      MinPlusPanelRawTiled(a.rows(), p.cols(), a.cols(), a.data(), a.cols(),
                           p.data(), p.cols(), c.mutable_data(), c.cols(),
                           /*parallel=*/true);
      return;
  }
}

DenseBlock ElementMin(const DenseBlock& a, const DenseBlock& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("element-min: shape mismatch");
  }
  if (a.is_phantom() || b.is_phantom()) {
    return DenseBlock::Phantom(a.rows(), a.cols());
  }
  DenseBlock out = a;
  ElementMinInPlace(out, b);
  return out;
}

void ElementMinInPlace(DenseBlock& a, const DenseBlock& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) {
    throw std::invalid_argument("element-min: shape mismatch");
  }
  if (a.is_phantom() || b.is_phantom()) {
    a = DenseBlock::Phantom(a.rows(), a.cols());
    return;
  }
  double* pa = a.mutable_data();
  const double* pb = b.data();
  const std::int64_t n = a.size();
  for (std::int64_t i = 0; i < n; ++i) pa[i] = std::min(pa[i], pb[i]);
}

void FloydWarshallRaw(std::int64_t n, double* a, std::int64_t lda) {
  const KernelTuning tuning = GetKernelTuning();
  switch (tuning.variant) {
    case KernelVariant::kNaive:
      FloydWarshallRawScalar(n, a, lda);
      return;
    case KernelVariant::kTiled:
    case KernelVariant::kTiledParallel:
      if (n <= tuning.fw_block) {
        FloydWarshallRawScalar(n, a, lda);
        return;
      }
      BlockedFloydWarshallRaw(n, a, lda, tuning.fw_block, /*tiled=*/true,
                              tuning.variant == KernelVariant::kTiledParallel);
      return;
  }
}

void FloydWarshallInPlace(DenseBlock& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Floyd-Warshall: block must be square");
  }
  if (a.is_phantom()) return;  // phantom stays phantom, shape unchanged
  FloydWarshallRaw(a.rows(), a.mutable_data(), a.cols());
}

void ReferenceFloydWarshall(DenseBlock& a) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("Floyd-Warshall: block must be square");
  }
  if (a.is_phantom()) return;
  FloydWarshallRawScalar(a.rows(), a.mutable_data(), a.cols());
}

void OuterSumMinUpdate(DenseBlock& a, const DenseBlock& u,
                       const DenseBlock& v) {
  if (u.rows() != a.rows() || v.rows() != a.cols() || u.cols() != 1 ||
      v.cols() != 1) {
    throw std::invalid_argument("outer-sum update: vector shape mismatch");
  }
  if (a.is_phantom() || u.is_phantom() || v.is_phantom()) {
    a = DenseBlock::Phantom(a.rows(), a.cols());
    return;
  }
  const double* pu = u.data();
  const double* pv = v.data();
  for (std::int64_t i = 0; i < a.rows(); ++i) {
    const double ui = pu[i];
    if (std::isinf(ui)) continue;
    double* ai = a.MutableRow(i);
    for (std::int64_t j = 0; j < a.cols(); ++j) {
      const double via = ui + pv[j];
      ai[j] = via < ai[j] ? via : ai[j];
    }
  }
}

void BlockedFloydWarshall(DenseBlock& a, std::int64_t block_size) {
  if (a.rows() != a.cols()) {
    throw std::invalid_argument("blocked Floyd-Warshall: matrix must be square");
  }
  if (block_size <= 0) {
    throw std::invalid_argument("blocked Floyd-Warshall: block size must be > 0");
  }
  if (a.is_phantom()) return;
  const KernelVariant variant = GetKernelVariant();
  BlockedFloydWarshallRaw(a.rows(), a.mutable_data(), a.cols(), block_size,
                          variant != KernelVariant::kNaive,
                          variant == KernelVariant::kTiledParallel);
}

}  // namespace apspark::linalg
