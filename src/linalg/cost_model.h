// Calibrated compute-cost model.
//
// The virtual cluster reports *modelled* time, not host wall time (the host
// here may have a single core; the paper's cluster had 1,024). Every kernel
// invocation charges this model. Default constants are calibrated to the
// paper's own sequential reference point: Floyd-Warshall on n = 256 takes
// T1 = 0.022 s, i.e. 256^3 / 0.022 = 0.762 Gops (paper §5.4). A cache-knee
// multiplier reproduces the inflection the paper reports around b ≈ 1810
// (the largest block fitting Skylake L3, §5.2 / Figure 2).
//
// Calibrate() optionally re-fits the leading constants to the machine the
// benchmarks actually run on, so host-measured curves (Figure 2) and modelled
// projections stay mutually consistent.
#pragma once

#include <cstdint>
#include <vector>

namespace apspark::linalg {

struct CostModel {
  // Seconds per elementary (compare+add) operation, below the cache knee.
  double fw_op_seconds = 1.311e-9;     // Floyd-Warshall inner op
  double minplus_op_seconds = 1.10e-9;  // min-plus product inner op
  // Bandwidth-bound per-element costs (O(b^2) kernels).
  double elementwise_op_seconds = 4.0e-10;  // MatMin / outer-sum update
  // Cache model: ops on blocks larger than the knee pay a penalty that ramps
  // from 1.0 to cache_penalty across one octave of block size.
  double cache_knee_elems = 1810.0 * 1810.0;  // paper: b=1810 fills L3
  double cache_penalty = 1.25;  // tiled kernels degrade mildly past the knee
  // Intra-task parallelism: cores of one executor cooperating on one task's
  // blocks. 1 (the default) charges every task sequentially — the classic
  // Spark executor model. Stamped from ClusterConfig::intra_task_cores by
  // the engine; individual kernels still charge their sequential time, but
  // a task's *batch* of independent block updates is scheduled onto this
  // many virtual cores via IntraTaskSpan.
  int intra_task_cores = 1;
  // Modelled speedup of the bit-packed boolean kernels over the dense double
  // loops: one 64-bit word-or retires 64 boolean lanes where the dense path
  // retires one double, so packed kernel charges scale by ~1/64. Applied by
  // the building-block charge sites via BitpackScale when an operand block
  // is bit-packed; real and phantom runs charge identically because phantom
  // blocks preserve packedness.
  double bitpack_op_scale = 1.0 / 64.0;

  /// Multiplier applied to O(b^3) kernels for a block of `elems` elements.
  double CacheFactor(double elems) const noexcept;

  /// Charge multiplier for a kernel whose operands are bit-packed (see
  /// bitpack_op_scale); 1.0 for dense operands.
  double BitpackScale(bool packed) const noexcept {
    return packed ? bitpack_op_scale : 1.0;
  }

  /// Modelled time of FloydWarshall on a b x b block.
  double FloydWarshallSeconds(std::int64_t b) const noexcept;

  /// Modelled time of a (m x k) (min,+) (k x n) product.
  double MinPlusSeconds(std::int64_t m, std::int64_t n,
                        std::int64_t k) const noexcept;

  /// Modelled time of an element-wise kernel over `elems` elements
  /// (MatMin, FloydWarshallUpdate outer-sum, ExtractCol copies).
  double ElementwiseSeconds(std::int64_t elems) const noexcept;

  /// Effective sequential Gops (n^3 / FloydWarshallSeconds(n)) — the paper's
  /// performance metric.
  double SequentialGops(std::int64_t n) const noexcept;

  /// Modelled time of one task that performs `piece_seconds` independent
  /// block updates with intra_task_cores cores cooperating on them (LPT list
  /// schedule — the same discipline the virtual cluster applies across
  /// tasks). With intra_task_cores == 1 this is the plain ordered sum, so
  /// sequential charging is reproduced bitwise.
  double IntraTaskSpan(std::vector<double> piece_seconds) const;

  /// Re-fits fw_op_seconds / minplus_op_seconds / elementwise_op_seconds by
  /// timing the real kernels on this host at block size `b` (materialized
  /// random blocks). Returns the fitted model. Intended for benchmarks that
  /// want host-faithful absolute numbers; tests use the paper defaults.
  static CostModel Calibrate(std::int64_t b = 512, std::uint64_t seed = 42);

  /// The paper-calibrated default (also what CostModel{} gives you).
  static CostModel PaperDefaults() { return CostModel{}; }
};

}  // namespace apspark::linalg
