// Preserved shuffle map-output bookkeeping (fault-tolerance subsystem).
//
// Spark preserves a shuffle's map outputs on the map executors' local disks
// so lost reduce partitions can be recomputed without re-running the map
// side. That preservation is exactly what an executor loss destroys: every
// map partition that ran on the lost node must be re-executed before any
// reduce partition can be rebuilt. This class records, per shuffle, what a
// replay needs — each map partition's modelled task cost and spill bytes,
// which partitions' outputs are currently lost, and whether the map tasks
// read the shared-storage side channel (in which case a replay is not
// guaranteed to reproduce the original output: the side channel lives
// outside the lineage, the paper's §3 impurity — and the engine refuses it,
// forcing the checkpoint-restart path).
//
// The preserved buckets are also accounted as executor block-manager memory:
// each map partition's serialized output bytes are charged to its node in
// the MemoryAccountant when the shuffle runs, released when the node dies or
// the shuffle is dropped, and re-charged when lost outputs are replayed —
// so node_peak_bytes stays honest under failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparklet/memory_accountant.h"

namespace apspark::sparklet {

class ShuffleMapState {
 public:
  /// `accountant` must outlive this state (it is owned by the context's
  /// VirtualCluster, and contexts outlive their RDDs — the same lifetime
  /// contract Rdd's destructor relies on).
  ShuffleMapState(std::string op_name, std::vector<double> task_costs,
                  std::vector<std::uint64_t> spill_bytes, bool map_side_impure,
                  int nodes, MemoryAccountant* accountant)
      : op_name_(std::move(op_name)),
        task_costs_(std::move(task_costs)),
        spill_bytes_(std::move(spill_bytes)),
        lost_(task_costs_.size(), false),
        charged_(task_costs_.size(), false),
        loss_epoch_(task_costs_.size(), 0),
        map_side_impure_(map_side_impure),
        nodes_(nodes < 1 ? 1 : nodes),
        accountant_(accountant) {
    for (std::size_t p = 0; p < spill_bytes_.size(); ++p) Charge(p);
  }

  ~ShuffleMapState() {
    for (std::size_t p = 0; p < spill_bytes_.size(); ++p) Release(p);
  }

  ShuffleMapState(const ShuffleMapState&) = delete;
  ShuffleMapState& operator=(const ShuffleMapState&) = delete;

  const std::string& op_name() const noexcept { return op_name_; }
  int num_map_partitions() const noexcept {
    return static_cast<int>(task_costs_.size());
  }
  int NodeOfMapPartition(std::int64_t p) const noexcept {
    return static_cast<int>(p % nodes_);
  }
  bool map_side_impure() const noexcept { return map_side_impure_; }
  int retry_attempts() const noexcept { return retry_attempts_; }
  const std::vector<std::uint64_t>& spill_bytes() const noexcept {
    return spill_bytes_;
  }

  /// The executor hosting `node`'s share of the preserved outputs died:
  /// mark those map partitions lost and release their block-manager bytes.
  /// Every hit bumps the partition's loss epoch — a loss firing at a replay
  /// stage's own boundary re-destroys outputs mid-recovery, and the epoch
  /// is how MarkRecovered tells a stale replay from a current one. Returns
  /// how many partitions were newly lost.
  int MarkNodeLost(int node) {
    int newly_lost = 0;
    for (std::size_t p = 0; p < lost_.size(); ++p) {
      if (NodeOfMapPartition(static_cast<std::int64_t>(p)) != node) continue;
      if (!lost_[p]) {
        lost_[p] = true;
        ++newly_lost;
      }
      ++loss_epoch_[p];
      Release(p);
    }
    return newly_lost;
  }

  bool any_lost() const noexcept {
    for (const bool l : lost_) {
      if (l) return true;
    }
    return false;
  }

  /// Snapshot of the map partitions currently lost, with their loss epochs.
  /// A further failure firing during the replay stage — same node or not —
  /// bumps the epoch and stays marked for the next replay round.
  struct ReplayPlan {
    std::vector<int> indices;
    std::vector<std::uint64_t> epochs;
  };

  ReplayPlan TakeReplayPlan() const {
    ReplayPlan plan;
    for (std::size_t p = 0; p < lost_.size(); ++p) {
      if (!lost_[p]) continue;
      plan.indices.push_back(static_cast<int>(p));
      plan.epochs.push_back(loss_epoch_[p]);
    }
    return plan;
  }

  /// Per-map-partition replay plan for `indices`: modelled cost of each
  /// lost partition's map task (0 elsewhere), suitable for RunStage.
  std::vector<double> ReplayTaskCosts(const std::vector<int>& indices) const {
    std::vector<double> costs(task_costs_.size(), 0.0);
    for (const int p : indices) {
      costs[static_cast<std::size_t>(p)] =
          task_costs_[static_cast<std::size_t>(p)];
    }
    return costs;
  }

  /// Spill bytes the replayed map tasks re-write (0 elsewhere).
  std::vector<std::uint64_t> ReplaySpillBytes(
      const std::vector<int>& indices) const {
    std::vector<std::uint64_t> bytes(spill_bytes_.size(), 0);
    for (const int p : indices) {
      bytes[static_cast<std::size_t>(p)] =
          spill_bytes_[static_cast<std::size_t>(p)];
    }
    return bytes;
  }

  /// The replay of `plan` ran: those outputs exist again on the
  /// (replacement) executors — unless a further loss fired at the replay
  /// stage's own boundary and destroyed them again (the epoch moved), in
  /// which case they stay lost for the next replay round.
  void MarkRecovered(const ReplayPlan& plan) {
    for (std::size_t i = 0; i < plan.indices.size(); ++i) {
      const auto idx = static_cast<std::size_t>(plan.indices[i]);
      if (!lost_[idx] || loss_epoch_[idx] != plan.epochs[i]) continue;
      lost_[idx] = false;
      Charge(idx);
    }
    ++retry_attempts_;
  }

 private:
  void Charge(std::size_t p) {
    if (charged_[p] || accountant_ == nullptr || spill_bytes_[p] == 0) return;
    accountant_->ChargeNode(NodeOfMapPartition(static_cast<std::int64_t>(p)),
                            spill_bytes_[p]);
    charged_[p] = true;
  }
  void Release(std::size_t p) {
    if (!charged_[p] || accountant_ == nullptr) return;
    accountant_->ReleaseNode(NodeOfMapPartition(static_cast<std::int64_t>(p)),
                             spill_bytes_[p]);
    charged_[p] = false;
  }

  std::string op_name_;
  std::vector<double> task_costs_;
  std::vector<std::uint64_t> spill_bytes_;
  std::vector<bool> lost_;
  std::vector<bool> charged_;
  std::vector<std::uint64_t> loss_epoch_;
  bool map_side_impure_ = false;
  int nodes_ = 1;
  int retry_attempts_ = 0;
  MemoryAccountant* accountant_ = nullptr;
};

}  // namespace apspark::sparklet
