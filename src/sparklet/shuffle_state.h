// Preserved shuffle map-output bookkeeping (fault-tolerance subsystem).
//
// Spark preserves a shuffle's map outputs on the map executors' local disks
// so lost reduce partitions can be recomputed without re-running the map
// side. That preservation is exactly what an executor loss destroys: every
// map partition that ran on the lost node must be re-executed before any
// reduce partition can be rebuilt. This class records, per shuffle, what a
// replay needs — each map partition's modelled task cost and spill bytes,
// which partitions' outputs are currently lost, and whether the map tasks
// read the shared-storage side channel (in which case a replay is not
// guaranteed to reproduce the original output: the side channel lives
// outside the lineage, the paper's §3 impurity — and the engine refuses it,
// forcing the checkpoint-restart path).
//
// The preserved buckets are also accounted as executor block-manager memory:
// each map partition's serialized output bytes are charged to its node in
// the MemoryAccountant when the shuffle runs, released when the node dies or
// the shuffle is dropped, and re-charged when lost outputs are replayed.
// With elastic membership the home of a partition can CHANGE between charge
// and release (a rebalance moved the slot), so the state records the node
// each partition's bytes live on and always releases from that recorded
// node — recomputing placement at release time would corrupt the ledger.
// Replayed outputs re-home to the placement map's current owner; join
// rebalances migrate resident outputs through MigratePartitions.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparklet/memory_accountant.h"
#include "sparklet/virtual_cluster.h"

namespace apspark::sparklet {

class ShuffleMapState {
 public:
  /// `cluster` and `accountant` must outlive this state (both are owned by
  /// the context, and contexts outlive their RDDs — the same lifetime
  /// contract Rdd's destructor relies on).
  ShuffleMapState(std::string op_name, std::vector<double> task_costs,
                  std::vector<std::uint64_t> spill_bytes, bool map_side_impure,
                  const VirtualCluster* cluster, MemoryAccountant* accountant)
      : op_name_(std::move(op_name)),
        task_costs_(std::move(task_costs)),
        spill_bytes_(std::move(spill_bytes)),
        lost_(task_costs_.size(), false),
        charged_(task_costs_.size(), false),
        loss_epoch_(task_costs_.size(), 0),
        node_(task_costs_.size(), 0),
        map_side_impure_(map_side_impure),
        cluster_(cluster),
        accountant_(accountant) {
    for (std::size_t p = 0; p < spill_bytes_.size(); ++p) {
      node_[p] = cluster_ != nullptr
                     ? cluster_->NodeOfPartition(static_cast<std::int64_t>(p))
                     : 0;
      Charge(p);
    }
  }

  ~ShuffleMapState() {
    for (std::size_t p = 0; p < spill_bytes_.size(); ++p) Release(p);
  }

  ShuffleMapState(const ShuffleMapState&) = delete;
  ShuffleMapState& operator=(const ShuffleMapState&) = delete;

  const std::string& op_name() const noexcept { return op_name_; }
  int num_map_partitions() const noexcept {
    return static_cast<int>(task_costs_.size());
  }
  /// Current home of map partition `p`'s preserved output (recorded at
  /// write/replay time; a later rebalance of the slot migrates it).
  int NodeOfMapPartition(std::int64_t p) const noexcept {
    return node_[static_cast<std::size_t>(p)];
  }
  bool map_side_impure() const noexcept { return map_side_impure_; }
  int retry_attempts() const noexcept { return retry_attempts_; }
  const std::vector<std::uint64_t>& spill_bytes() const noexcept {
    return spill_bytes_;
  }

  /// The executor hosting `node`'s share of the preserved outputs died:
  /// mark those map partitions lost and release their block-manager bytes.
  /// Every hit bumps the partition's loss epoch — a loss firing at a replay
  /// stage's own boundary re-destroys outputs mid-recovery, and the epoch
  /// is how MarkRecovered tells a stale replay from a current one. Returns
  /// how many partitions were newly lost.
  int MarkNodeLost(int node) {
    int newly_lost = 0;
    for (std::size_t p = 0; p < lost_.size(); ++p) {
      if (node_[p] != node) continue;
      if (!lost_[p]) {
        lost_[p] = true;
        ++newly_lost;
      }
      ++loss_epoch_[p];
      Release(p);
    }
    return newly_lost;
  }

  /// A join rebalance handed some slots to the newcomer: resident preserved
  /// outputs travel with their slot (release on the donor, charge on the
  /// new owner). Returns the bytes that actually moved — lost/uncharged
  /// partitions re-home for free.
  std::uint64_t MigratePartitions(const std::vector<BlockManager::Move>& moves) {
    std::uint64_t moved = 0;
    for (const auto& move : moves) {
      if (move.partition < 0 ||
          move.partition >= static_cast<std::int64_t>(node_.size())) {
        continue;
      }
      const auto p = static_cast<std::size_t>(move.partition);
      if (node_[p] != move.from) continue;
      const bool resident = charged_[p];
      Release(p);
      node_[p] = move.to;
      if (resident) {
        Charge(p);
        moved += spill_bytes_[p];
      }
    }
    return moved;
  }

  bool any_lost() const noexcept {
    for (const bool l : lost_) {
      if (l) return true;
    }
    return false;
  }

  /// Snapshot of the map partitions currently lost, with their loss epochs.
  /// A further failure firing during the replay stage — same node or not —
  /// bumps the epoch and stays marked for the next replay round.
  struct ReplayPlan {
    std::vector<int> indices;
    std::vector<std::uint64_t> epochs;
  };

  ReplayPlan TakeReplayPlan() const {
    ReplayPlan plan;
    for (std::size_t p = 0; p < lost_.size(); ++p) {
      if (!lost_[p]) continue;
      plan.indices.push_back(static_cast<int>(p));
      plan.epochs.push_back(loss_epoch_[p]);
    }
    return plan;
  }

  /// Per-map-partition replay plan for `indices`: modelled cost of each
  /// lost partition's map task (0 elsewhere), suitable for RunStage.
  std::vector<double> ReplayTaskCosts(const std::vector<int>& indices) const {
    std::vector<double> costs(task_costs_.size(), 0.0);
    for (const int p : indices) {
      costs[static_cast<std::size_t>(p)] =
          task_costs_[static_cast<std::size_t>(p)];
    }
    return costs;
  }

  /// Spill bytes the replayed map tasks re-write (0 elsewhere).
  std::vector<std::uint64_t> ReplaySpillBytes(
      const std::vector<int>& indices) const {
    std::vector<std::uint64_t> bytes(spill_bytes_.size(), 0);
    for (const int p : indices) {
      bytes[static_cast<std::size_t>(p)] =
          spill_bytes_[static_cast<std::size_t>(p)];
    }
    return bytes;
  }

  /// The replay of `plan` ran: those outputs exist again — on the slots'
  /// *current* owners per the rebalanced placement map — unless a further
  /// loss fired at the replay stage's own boundary and destroyed them again
  /// (the epoch moved), in which case they stay lost for the next replay
  /// round.
  void MarkRecovered(const ReplayPlan& plan) {
    for (std::size_t i = 0; i < plan.indices.size(); ++i) {
      const auto idx = static_cast<std::size_t>(plan.indices[i]);
      if (!lost_[idx] || loss_epoch_[idx] != plan.epochs[i]) continue;
      lost_[idx] = false;
      if (cluster_ != nullptr) {
        node_[idx] =
            cluster_->NodeOfPartition(static_cast<std::int64_t>(idx));
      }
      Charge(idx);
    }
    ++retry_attempts_;
  }

 private:
  void Charge(std::size_t p) {
    if (charged_[p] || accountant_ == nullptr || spill_bytes_[p] == 0) return;
    accountant_->ChargeNode(node_[p], spill_bytes_[p]);
    charged_[p] = true;
  }
  void Release(std::size_t p) {
    if (!charged_[p] || accountant_ == nullptr) return;
    accountant_->ReleaseNode(node_[p], spill_bytes_[p]);
    charged_[p] = false;
  }

  std::string op_name_;
  std::vector<double> task_costs_;
  std::vector<std::uint64_t> spill_bytes_;
  std::vector<bool> lost_;
  std::vector<bool> charged_;
  std::vector<std::uint64_t> loss_epoch_;
  /// Home of each map partition's preserved output (charge/release target).
  std::vector<int> node_;
  bool map_side_impure_ = false;
  const VirtualCluster* cluster_ = nullptr;
  int retry_attempts_ = 0;
  MemoryAccountant* accountant_ = nullptr;
};

}  // namespace apspark::sparklet
