// Per-task execution context.
//
// Every user function invoked by the engine receives a TaskContext& through
// which it (a) charges modelled compute time — kernels are real at test
// scale, but the virtual clock always advances by the calibrated cost model
// so that laptop runs and paper-scale phantom runs report consistent time —
// and (b) reaches the shared-storage side channel, with read traffic added
// to the task's modelled duration (the paper's executors deserialize column
// blocks from GPFS inside map tasks).
#pragma once

#include <cstdint>
#include <string>

#include "common/status.h"
#include "linalg/cost_model.h"
#include "sparklet/config.h"
#include "sparklet/shared_storage.h"

namespace apspark::sparklet {

class TaskContext {
 public:
  TaskContext(const linalg::CostModel* cost_model, SharedStorage* storage,
              const ClusterConfig* config)
      : cost_model_(cost_model), storage_(storage), config_(config) {}

  const linalg::CostModel& cost_model() const noexcept { return *cost_model_; }

  /// Adds modelled seconds to this task's duration.
  void ChargeCompute(double seconds) noexcept { task_seconds_ += seconds; }

  /// Reads an object from shared storage, charging the task for the
  /// transfer (per-reader slice of the shared-FS bandwidth).
  Result<SharedStorage::Object> ReadShared(const std::string& key);

  /// Zero-copy block read: same charging as ReadShared (the modelled bytes
  /// cross the shared FS either way), but returns the stored immutable ref —
  /// no per-task deserialization copy.
  Result<linalg::BlockRef> ReadSharedBlock(const std::string& key);

  /// Total modelled duration accumulated so far.
  double task_seconds() const noexcept { return task_seconds_; }
  std::uint64_t shared_read_bytes() const noexcept {
    return shared_read_bytes_;
  }

  /// Engine-internal: resets per-task accumulation between tasks.
  void ResetForTask() noexcept {
    task_seconds_ = 0;
    shared_read_bytes_ = 0;
  }

  /// Engine-internal: number of tasks of the current stage that can run
  /// concurrently, used to split shared-FS bandwidth fairly.
  void SetStageConcurrency(int concurrency) noexcept {
    stage_concurrency_ = concurrency < 1 ? 1 : concurrency;
  }

 private:
  /// Adds the modelled shared-FS transfer of `logical_bytes` to the task.
  void ChargeSharedRead(std::uint64_t logical_bytes) noexcept;

  const linalg::CostModel* cost_model_;
  SharedStorage* storage_;
  const ClusterConfig* config_;
  double task_seconds_ = 0;
  std::uint64_t shared_read_bytes_ = 0;
  int stage_concurrency_ = 1;
};

}  // namespace apspark::sparklet
