// Live-bytes accountant of the zero-copy data plane.
//
// The virtual cluster models *time*; this class models *memory residency*:
// how many logical bytes are live on the driver and on each executor node at
// any point of a run, and the high-water marks those numbers reach. With the
// data plane holding ref-counted BlockRefs instead of copies, the accountant
// is what makes the zero-copy claim measurable — driver_peak_bytes of a
// collect/broadcast solve versus a pure shuffle solve is exactly the
// difference the paper's §4.2 side-channel discussion is about.
//
// Accounting model (deterministic — byte counts, never host timing):
//  * Executor nodes: cached RDD partitions charge their serialized bytes to
//    the partition's node on materialization and release on
//    Unpersist/DropPartition/destruction. (Preserved shuffle spill is *disk*
//    and stays with VirtualCluster's local-storage accounting.)
//  * Driver: registered holdings (ChargeDriver/ReleaseDriver) plus transient
//    spikes (TouchDriver) for data that funnels through the driver NIC —
//    collect results, broadcast sources. A transient touch raises the peak
//    without changing the live set.
//  * Stage windows: RunStage closes a window; the accountant records each
//    window's driver/node peaks under the stage name (per-stage peaks,
//    surfaced by apspark_cli).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace apspark::sparklet {

struct SimMetrics;

class MemoryAccountant {
 public:
  /// `mirror` (optional) receives peak updates into its driver_peak_bytes /
  /// node_peak_bytes fields so run metrics carry the high water automatically.
  explicit MemoryAccountant(int nodes = 0, SimMetrics* mirror = nullptr);

  /// Re-shapes for `nodes` executors and forgets everything.
  void Reset(int nodes);

  /// Forgets the high-water marks but keeps the live set: peaks restart from
  /// what is currently resident (VirtualCluster::Reset's semantics — solvers
  /// reset the clock after free RDD population, not the residency).
  void ResetPeaks();

  /// A fresh executor joined (elastic membership): extends the per-node live
  /// set with an empty entry so the new id is tracked first-class instead of
  /// wrapping onto an existing node's ledger.
  void AddNode() { node_live_.push_back(0); }
  int num_nodes() const noexcept { return static_cast<int>(node_live_.size()); }

  // -- driver ------------------------------------------------------------
  void ChargeDriver(std::uint64_t bytes);
  void ReleaseDriver(std::uint64_t bytes);
  /// Transient spike: `extra_bytes` were momentarily resident on top of the
  /// registered driver live set (a collect materializing its result).
  void TouchDriver(std::uint64_t extra_bytes);

  // -- executor nodes ----------------------------------------------------
  void ChargeNode(int node, std::uint64_t bytes);
  void ReleaseNode(int node, std::uint64_t bytes);

  // -- stage windows -----------------------------------------------------
  struct StagePeak {
    std::string stage;
    std::uint64_t driver_peak_bytes = 0;
    std::uint64_t node_peak_bytes = 0;
  };
  /// Closes the current window under `stage` (called by RunStage). Windows
  /// with zero peaks are not recorded.
  void EndStage(const std::string& stage);

  // -- accessors ---------------------------------------------------------
  std::uint64_t driver_live_bytes() const noexcept { return driver_live_; }
  std::uint64_t driver_peak_bytes() const noexcept { return driver_peak_; }
  std::uint64_t node_live_bytes(int node) const;
  /// Max over nodes of each node's high water.
  std::uint64_t node_peak_bytes() const noexcept { return node_peak_; }
  /// The still-open stage window's node peak (EndStage closes and resets
  /// it). The stage-trace recorder reads this to tag each stage with its
  /// memory demand for multi-tenant admission control.
  std::uint64_t window_node_peak_bytes() const noexcept {
    return window_node_peak_;
  }
  const std::vector<StagePeak>& stage_peaks() const noexcept {
    return stage_peaks_;
  }

 private:
  void NoteDriver(std::uint64_t resident);
  void NoteNode(std::uint64_t resident);

  SimMetrics* mirror_ = nullptr;
  std::uint64_t driver_live_ = 0;
  std::uint64_t driver_peak_ = 0;
  std::uint64_t node_peak_ = 0;
  std::vector<std::uint64_t> node_live_;
  // Current stage window's peaks (reset by EndStage).
  std::uint64_t window_driver_peak_ = 0;
  std::uint64_t window_node_peak_ = 0;
  std::vector<StagePeak> stage_peaks_;
};

}  // namespace apspark::sparklet
