// Serialized-size trait.
//
// Sparklet never needs to serialize records to function (data stays in the
// driver process), but every byte-accounting decision — shuffle spill,
// network transfer, collect, shared-FS traffic — uses the size the record
// *would* occupy serialized. Specialize Serde<T> for record types whose
// payload is not sizeof(T) (e.g. shared_ptr<DenseBlock> records).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace apspark::sparklet {

template <typename T>
struct Serde {
  static std::uint64_t SizeOf(const T&) noexcept { return sizeof(T); }
};

template <typename A, typename B>
struct Serde<std::pair<A, B>> {
  static std::uint64_t SizeOf(const std::pair<A, B>& p) noexcept {
    return Serde<A>::SizeOf(p.first) + Serde<B>::SizeOf(p.second);
  }
};

template <typename T>
struct Serde<std::vector<T>> {
  static std::uint64_t SizeOf(const std::vector<T>& v) noexcept {
    std::uint64_t total = 8;  // length prefix
    for (const T& item : v) total += Serde<T>::SizeOf(item);
    return total;
  }
};

template <>
struct Serde<std::string> {
  static std::uint64_t SizeOf(const std::string& s) noexcept {
    return 8 + s.size();
  }
};

template <typename T>
std::uint64_t SerializedSizeOf(const T& value) noexcept {
  return Serde<T>::SizeOf(value);
}

}  // namespace apspark::sparklet
