// Per-run simulation metrics, broken down the way the paper discusses costs:
// compute vs data movement (shuffle, driver collect, shared-FS side channel)
// vs Spark overheads (task scheduling, stage setup).
#pragma once

#include <cstdint>
#include <string>

namespace apspark::sparklet {

struct SimMetrics {
  // Virtual time, seconds, by category. sim_seconds() is their sum and is
  // the "execution time" every benchmark reports.
  double compute_seconds = 0;
  double shuffle_seconds = 0;
  double collect_seconds = 0;
  double broadcast_seconds = 0;
  double shared_fs_seconds = 0;
  double scheduling_seconds = 0;

  // Volumes.
  std::uint64_t shuffle_bytes = 0;
  std::uint64_t collect_bytes = 0;
  std::uint64_t broadcast_bytes = 0;
  std::uint64_t shared_fs_written_bytes = 0;
  std::uint64_t shared_fs_read_bytes = 0;

  // Counters.
  std::uint64_t stages = 0;
  std::uint64_t tasks = 0;
  std::uint64_t task_failures = 0;
  std::uint64_t task_retries = 0;

  // Fault-tolerance subsystem. Recovery time is an *attribution overlay*:
  // stages replaying lost work already advance the normal category clocks
  // (compute/scheduling/shuffle), and recovery_seconds additionally records
  // how much of the run was spent redoing work an executor loss destroyed —
  // lineage recomputation of lost cached partitions and shuffle map outputs
  // for pure dataflow, plus the post-checkpoint progress a restart throws
  // away for impure solvers. It is therefore NOT part of sim_seconds().
  double recovery_seconds = 0;
  /// Tasks re-executed because a failure destroyed their prior result.
  std::uint64_t recomputed_tasks = 0;
  /// Injected executor (node) losses that actually fired.
  std::uint64_t executor_failures = 0;
  /// Job-level restarts from a checkpoint (impure-solver recovery path).
  std::uint64_t job_restarts = 0;
  /// Speculative task copies that beat their straggling original.
  std::uint64_t speculative_tasks = 0;

  // Elastic-membership subsystem (BlockManager rebalancing). Loss moves
  // carry no bytes (the data died with the node); join moves migrate their
  // resident bytes over the network, and that transfer time is its own
  // sim_seconds() category below.
  double rebalance_seconds = 0;
  /// Partition slots whose owner changed at a membership event (loss spread
  /// + join steals).
  std::uint64_t migrated_partitions = 0;
  /// Resident bytes moved by join rebalances (cache + preserved shuffle
  /// output handed to the newcomer).
  std::uint64_t migration_bytes = 0;
  /// Elastic joins that fired.
  std::uint64_t node_joins = 0;

  // Multi-tenant fair sharing (FairScheduler). Admission waits are virtual
  // time a job spent queued because running its next stage would have
  // breached the shared executor memory budget; spilled bytes are the
  // overflow a stage pushed to local disk when it could never fit.
  double admission_wait_seconds = 0;
  std::uint64_t spilled_bytes = 0;

  // High-water mark of per-node local storage used for shuffle staging.
  std::uint64_t local_storage_peak_bytes = 0;

  // Live-bytes high water from the MemoryAccountant: driver-resident data
  // (collect results, broadcast sources, registered holdings) and the
  // largest per-node in-memory footprint (cached RDD partitions).
  std::uint64_t driver_peak_bytes = 0;
  std::uint64_t node_peak_bytes = 0;

  double sim_seconds() const noexcept {
    return compute_seconds + shuffle_seconds + collect_seconds +
           broadcast_seconds + shared_fs_seconds + scheduling_seconds +
           rebalance_seconds;
  }

  SimMetrics& operator+=(const SimMetrics& other) noexcept;

  std::string Summary() const;
};

}  // namespace apspark::sparklet
