// Elastic partition placement (the block-manager map).
//
// PR 5's recovery model kept Spark's weakest placement story: partition p
// lives on node `p % nodes`, forever, and a "lost" node was immediately
// replaced by an empty twin with the same id. This class makes membership
// first-class: the cluster owns a placement map from partition slots to
// node ids, nodes can leave (executor loss) and join (elastic scale-up /
// replacement capacity), and every membership change deterministically
// rebalances ownership:
//
//  * node loss     — the dead node's slots are spread across the survivors,
//                    each slot going to the least-loaded live node (ties to
//                    the lowest node id). The data on those slots is gone;
//                    recovery recomputes it on the new owners, so the moves
//                    carry no bytes.
//  * node join     — the newcomer steals slots from the most-loaded live
//                    nodes (ties to the lowest id, always the donor's
//                    highest-numbered slot) until it is within one slot of
//                    the balanced share. Stolen slots DO carry their resident
//                    bytes: the caller charges the migration through the
//                    network model and moves the MemoryAccountant charge.
//
// Placement only decides accounting and modelled time — record processing is
// real and runs in the driver thread — so rebalancing can never change a
// solver's numeric output. That is what keeps every membership schedule
// bitwise-locked to the no-failure run.
//
// Nodes also carry a rack id (ClusterConfig::racks): initial nodes split
// into contiguous, balanced rack blocks, and joiners land in the least
// populated rack. One correlated-failure plan can take out a whole rack
// (FaultInjector::FailRack), exercising the multi-partition-loss recovery
// paths a single-node loss never hits.
#pragma once

#include <cstdint>
#include <vector>

namespace apspark::sparklet {

class BlockManager {
 public:
  /// One partition slot changing owner. `from` is the previous owner (a
  /// just-dead node for a loss rebalance, a live donor for a join steal).
  struct Move {
    std::int64_t partition = 0;
    int from = 0;
    int to = 0;
  };

  struct JoinResult {
    int node = 0;  // the newcomer's freshly issued node id
    std::vector<Move> moves;
  };

  BlockManager(int nodes, int racks);

  /// Node ids ever issued (alive and dead; dead ids are never reused).
  int num_nodes() const noexcept { return static_cast<int>(alive_.size()); }
  int live_nodes() const noexcept { return live_; }
  bool alive(int node) const noexcept {
    return node >= 0 && node < num_nodes() &&
           alive_[static_cast<std::size_t>(node)];
  }
  int num_racks() const noexcept { return racks_; }
  int rack_of(int node) const;
  std::vector<int> LiveNodesInRack(int rack) const;

  /// Owner of `partition`. Rejects negative ids (SPARKLET_CHECK — the old
  /// signed modulo returned a negative node index). Slots are created on
  /// first lookup, each going to the least-loaded live node, which on an
  /// unchanged cluster reproduces the historical `partition % nodes`
  /// round-robin exactly.
  int NodeOf(std::int64_t partition) const;

  /// Marks `node` dead and rebalances its slots onto the survivors. The
  /// caller must not remove the last live node (checked). Returns the
  /// reassignments (from == node, data NOT migrated — it died with the
  /// node).
  std::vector<Move> RemoveNode(int node);

  /// Issues a fresh node id, assigns it to the least-populated rack, and
  /// steals slots from the most-loaded live nodes until balanced. The
  /// returned moves' resident data migrates with them (caller's job).
  JoinResult AddNode();

  /// Slots currently owned by `node` (0 for dead nodes).
  int OwnedSlots(int node) const;

  /// Highest slot index materialized so far + 1.
  std::int64_t known_partitions() const noexcept {
    return static_cast<std::int64_t>(placement_.size());
  }

 private:
  int LeastLoadedLive() const;
  void EnsureSlot(std::int64_t partition) const;

  int racks_ = 1;
  int live_ = 0;
  std::vector<bool> alive_;
  std::vector<int> rack_;
  // Slot -> owner. Grown lazily by NodeOf (placement is demand-driven: the
  // engine asks only about partitions that exist), hence mutable.
  mutable std::vector<int> placement_;
  mutable std::vector<int> owned_;  // node -> owned slot count
};

}  // namespace apspark::sparklet
