// Virtual cluster description.
//
// Sparklet reports *modelled* time from a discrete-event simulation of this
// cluster, so experiments at the paper's scale (32 nodes x 32 cores, GbE,
// local SSDs, shared GPFS) can run on any host. The default constants mirror
// the paper's testbed (§5): per-node resources, gigabit Ethernet, 1 TB local
// staging per node, and Spark-like per-task scheduling overheads.
#pragma once

#include <cstdint>
#include <string>

#include "common/bytes.h"
#include "linalg/kernel_registry.h"

namespace apspark::sparklet {

struct NetworkModel {
  /// Point-to-point bandwidth per node NIC (GbE = 125 MB/s).
  double bandwidth_bytes_per_sec = 125.0e6;
  /// Per-message latency (switch + stack).
  double latency_seconds = 100e-6;
};

struct SharedFsModel {
  /// Aggregate bandwidth of the shared file system (HPC-centre GPFS
  /// installations sustain tens of GB/s across many readers).
  double aggregate_bandwidth_bytes_per_sec = 16.0e9;
  /// Per-file open/close overhead.
  double file_overhead_seconds = 2e-3;
};

struct ClusterConfig {
  int nodes = 32;
  int cores_per_node = 32;
  /// Failure domains (racks): the initial nodes split into `racks`
  /// contiguous, balanced blocks, and one FaultInjector::FailRack plan takes
  /// out a whole block at once — the correlated-failure model. 1 (the
  /// default) means no correlation structure.
  int racks = 1;
  std::uint64_t executor_memory_bytes = 180ULL * kGiB;
  /// Local SSD capacity available for shuffle staging, per node.
  std::uint64_t local_storage_bytes = 1ULL * kTiB;

  NetworkModel network;
  SharedFsModel shared_fs;

  /// Driver-side scheduling + serialization cost per launched task.
  /// Calibrated against the paper's 2D Floyd-Warshall iterations (~17-21 s
  /// for two ~2048-task stages plus collect/broadcast, Table 2).
  double task_overhead_seconds = 2.5e-3;
  /// Fixed driver cost per stage (DAG scheduling, task-set setup).
  double stage_overhead_seconds = 30e-3;
  /// Effective compression ratio of shuffle spill files (Spark compresses
  /// shuffle output by default; lz4 on pickled double-precision path
  /// matrices roughly halves them). Applied to both spill and wire bytes.
  double shuffle_compression = 0.5;
  /// How many times a failed task is retried before the job aborts
  /// (spark.task.maxFailures defaults to 4).
  int max_task_failures = 4;
  /// Which linalg kernel implementation the solvers select before running
  /// (see linalg/kernel_registry.h). Host-side only: virtual-cluster time is
  /// always charged from the calibrated cost model, so changing the variant
  /// changes how fast real blocks are crunched on this machine, never the
  /// modelled cluster seconds.
  linalg::KernelVariant kernel_variant = linalg::KernelVariant::kTiled;
  /// Serialization/deserialization cost per byte crossing a process
  /// boundary (pySpark pickling is slow, ~300 MB/s per core).
  double serde_seconds_per_byte = 3e-9;
  /// Local SSD streaming bandwidth (shuffle staging I/O per node).
  double local_storage_bandwidth_bytes_per_sec = 500.0e6;
  /// Executor jitter: task t of a stage runs up to this fraction slower
  /// (GC pauses, Python worker forks, OS noise), deterministically derived
  /// from (stage, task). This is what makes over-decomposition B > 1 pay
  /// off — with exactly one task per core a single slow task extends the
  /// stage, while B >= 2 lets the scheduler absorb stragglers (§5.3).
  double straggler_spread = 0.35;

  /// Hard straggler model, the fault-injection twin of the jitter above:
  /// when > 1, every `straggler_every`-th task of a stage (deterministically
  /// chosen from (stage, task)) runs this many times slower — a failing
  /// disk, a thermally throttled node, a hot JVM. Distinct from
  /// straggler_spread, which models ubiquitous small noise.
  double straggler_factor = 1.0;
  int straggler_every = 8;

  /// Speculative re-execution (spark.speculation): once a task has run
  /// longer than `speculation_multiplier` x the stage's median task time,
  /// the scheduler launches a copy on another executor; the task finishes
  /// when the first attempt does. Modelled completion of a straggling task
  /// becomes min(original, detection point + median copy run), and each
  /// winning copy counts into SimMetrics::speculative_tasks.
  bool speculation = false;
  double speculation_multiplier = 1.5;

  /// Cores per executor cooperating on ONE task's blocks (intra-task
  /// parallelism). 1 models Spark's classic one-core-per-task executors.
  /// With c > 1, kernels charged through a task batch are scheduled onto c
  /// virtual cores (CostModel::IntraTaskSpan) and the cluster runs
  /// total_cores() / c concurrent task slots — per-task time shrinks, slot
  /// count shrinks to match, so the win shows exactly where it is real:
  /// stages with fewer tasks than cores (small q, the straggler tail).
  int intra_task_cores = 1;

  int total_cores() const noexcept { return nodes * cores_per_node; }

  /// Concurrent task slots the cluster schedules stages onto: each task
  /// occupies intra_task_cores cores of its executor.
  int concurrent_task_slots() const noexcept {
    const int per_task = intra_task_cores < 1 ? 1 : intra_task_cores;
    const int slots = total_cores() / per_task;
    return slots < 1 ? 1 : slots;
  }

  /// The paper's cluster: 32 nodes x 32 Skylake cores, 192 GB (180 usable),
  /// GbE, 1 TB local SSD, shared GPFS.
  static ClusterConfig Paper() { return ClusterConfig{}; }

  /// Paper cluster scaled to `cores` total cores (for weak-scaling sweeps:
  /// the paper uses whole 32-core nodes, so nodes = cores / 32, minimum 1).
  static ClusterConfig PaperWithCores(int cores);

  /// Small cluster for unit tests: 2 nodes x 2 cores, tiny storage so
  /// exhaustion paths are testable, zero-ish overheads for speed.
  static ClusterConfig TinyTest();

  std::string Summary() const;
};

}  // namespace apspark::sparklet
