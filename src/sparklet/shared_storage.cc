#include "sparklet/shared_storage.h"

namespace apspark::sparklet {

void SharedStorage::Put(const std::string& key,
                        std::vector<std::uint8_t> bytes,
                        std::uint64_t logical_bytes) {
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    total_bytes_ -= it->second.object.logical_bytes;
    objects_.erase(it);
  }
  Entry entry;
  entry.object.payload =
      std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
  entry.object.logical_bytes = logical_bytes;
  total_bytes_ += logical_bytes;
  objects_.emplace(key, std::move(entry));
}

void SharedStorage::PutBlock(const std::string& key, linalg::BlockRef block) {
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    total_bytes_ -= it->second.object.logical_bytes;
    objects_.erase(it);
  }
  Entry entry;
  entry.object.logical_bytes = block.serialized_bytes();
  entry.block = std::move(block);
  total_bytes_ += entry.object.logical_bytes;
  objects_.emplace(key, std::move(entry));
}

Result<SharedStorage::Object> SharedStorage::Get(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError("shared storage: no object '" + key + "'");
  }
  if (it->second.block) {
    // Mirror of GetBlock's kind guard: serving a block entry as an Object
    // would hand the caller a null payload to dereference.
    return FailedPreconditionError("shared storage: object '" + key +
                                   "' is a block, not a byte object");
  }
  return it->second.object;
}

Result<linalg::BlockRef> SharedStorage::GetBlock(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError("shared storage: no object '" + key + "'");
  }
  if (!it->second.block) {
    return FailedPreconditionError("shared storage: object '" + key +
                                   "' is a byte object, not a block");
  }
  return it->second.block;
}

bool SharedStorage::Contains(const std::string& key) const {
  return objects_.count(key) > 0;
}

void SharedStorage::Clear() {
  objects_.clear();
  total_bytes_ = 0;
}

std::size_t SharedStorage::ErasePrefix(const std::string& prefix) {
  std::size_t removed = 0;
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      total_bytes_ -= it->second.object.logical_bytes;
      it = objects_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace apspark::sparklet
