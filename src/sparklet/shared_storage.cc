#include "sparklet/shared_storage.h"

namespace apspark::sparklet {

void SharedStorage::Put(const std::string& key,
                        std::vector<std::uint8_t> bytes,
                        std::uint64_t logical_bytes) {
  auto it = objects_.find(key);
  if (it != objects_.end()) {
    total_bytes_ -= it->second.logical_bytes;
    objects_.erase(it);
  }
  Object obj;
  obj.payload =
      std::make_shared<const std::vector<std::uint8_t>>(std::move(bytes));
  obj.logical_bytes = logical_bytes;
  total_bytes_ += logical_bytes;
  objects_.emplace(key, std::move(obj));
}

Result<SharedStorage::Object> SharedStorage::Get(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError("shared storage: no object '" + key + "'");
  }
  return it->second;
}

bool SharedStorage::Contains(const std::string& key) const {
  return objects_.count(key) > 0;
}

void SharedStorage::Clear() {
  objects_.clear();
  total_bytes_ = 0;
}

std::size_t SharedStorage::ErasePrefix(const std::string& prefix) {
  std::size_t removed = 0;
  for (auto it = objects_.begin(); it != objects_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      total_bytes_ -= it->second.logical_bytes;
      it = objects_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

}  // namespace apspark::sparklet
