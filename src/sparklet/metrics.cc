#include "sparklet/metrics.h"

#include <sstream>

#include "common/bytes.h"
#include "common/time_utils.h"

namespace apspark::sparklet {

SimMetrics& SimMetrics::operator+=(const SimMetrics& other) noexcept {
  compute_seconds += other.compute_seconds;
  shuffle_seconds += other.shuffle_seconds;
  collect_seconds += other.collect_seconds;
  broadcast_seconds += other.broadcast_seconds;
  shared_fs_seconds += other.shared_fs_seconds;
  scheduling_seconds += other.scheduling_seconds;
  shuffle_bytes += other.shuffle_bytes;
  collect_bytes += other.collect_bytes;
  broadcast_bytes += other.broadcast_bytes;
  shared_fs_written_bytes += other.shared_fs_written_bytes;
  shared_fs_read_bytes += other.shared_fs_read_bytes;
  stages += other.stages;
  tasks += other.tasks;
  task_failures += other.task_failures;
  task_retries += other.task_retries;
  recovery_seconds += other.recovery_seconds;
  recomputed_tasks += other.recomputed_tasks;
  executor_failures += other.executor_failures;
  job_restarts += other.job_restarts;
  speculative_tasks += other.speculative_tasks;
  rebalance_seconds += other.rebalance_seconds;
  migrated_partitions += other.migrated_partitions;
  migration_bytes += other.migration_bytes;
  node_joins += other.node_joins;
  admission_wait_seconds += other.admission_wait_seconds;
  spilled_bytes += other.spilled_bytes;
  local_storage_peak_bytes =
      std::max(local_storage_peak_bytes, other.local_storage_peak_bytes);
  driver_peak_bytes = std::max(driver_peak_bytes, other.driver_peak_bytes);
  node_peak_bytes = std::max(node_peak_bytes, other.node_peak_bytes);
  return *this;
}

std::string SimMetrics::Summary() const {
  std::ostringstream out;
  out << "sim=" << FormatDuration(sim_seconds())
      << " [compute=" << FormatDuration(compute_seconds)
      << " shuffle=" << FormatDuration(shuffle_seconds)
      << " collect=" << FormatDuration(collect_seconds)
      << " bcast=" << FormatDuration(broadcast_seconds)
      << " sharedfs=" << FormatDuration(shared_fs_seconds)
      << " sched=" << FormatDuration(scheduling_seconds) << "]"
      << " stages=" << stages << " tasks=" << tasks
      << " volumes[shuffle=" << FormatBytes(shuffle_bytes)
      << " collect=" << FormatBytes(collect_bytes)
      << " bcast=" << FormatBytes(broadcast_bytes)
      << " sharedfs-w=" << FormatBytes(shared_fs_written_bytes)
      << " sharedfs-r=" << FormatBytes(shared_fs_read_bytes) << "]"
      << " spill-peak/node=" << FormatBytes(local_storage_peak_bytes)
      << " mem-peak[driver=" << FormatBytes(driver_peak_bytes)
      << " node=" << FormatBytes(node_peak_bytes) << "]";
  if (executor_failures > 0 || recomputed_tasks > 0 || job_restarts > 0 ||
      speculative_tasks > 0) {
    out << " recovery[lost-nodes=" << executor_failures
        << " recomputed=" << recomputed_tasks << " retries=" << task_retries
        << " restarts=" << job_restarts
        << " speculative=" << speculative_tasks << " redone="
        << FormatDuration(recovery_seconds) << "]";
  }
  if (migrated_partitions > 0 || node_joins > 0) {
    out << " rebalance[moved=" << migrated_partitions
        << " bytes=" << FormatBytes(migration_bytes)
        << " joins=" << node_joins
        << " time=" << FormatDuration(rebalance_seconds) << "]";
  }
  // Admission waits and spill are part of the paper's cost accounting even
  // when zero — always printed so log scrapers see a stable schema.
  out << " tenancy[admission-wait=" << FormatDuration(admission_wait_seconds)
      << " spilled=" << FormatBytes(spilled_bytes) << "]";
  return out.str();
}

}  // namespace apspark::sparklet
