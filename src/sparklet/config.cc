#include "sparklet/config.h"

#include <algorithm>
#include <sstream>

namespace apspark::sparklet {

ClusterConfig ClusterConfig::PaperWithCores(int cores) {
  ClusterConfig cfg;
  cfg.nodes = std::max(1, cores / cfg.cores_per_node);
  if (cfg.nodes * cfg.cores_per_node < cores) {
    cfg.cores_per_node = cores / cfg.nodes;
  }
  return cfg;
}

ClusterConfig ClusterConfig::TinyTest() {
  ClusterConfig cfg;
  cfg.nodes = 2;
  cfg.cores_per_node = 2;
  cfg.executor_memory_bytes = 1 * kGiB;
  cfg.local_storage_bytes = 64 * kMiB;
  cfg.task_overhead_seconds = 1e-4;
  cfg.stage_overhead_seconds = 1e-4;
  return cfg;
}

std::string ClusterConfig::Summary() const {
  std::ostringstream out;
  out << nodes << " nodes x " << cores_per_node << " cores";
  if (racks > 1) out << " in " << racks << " racks";
  out << ", " << FormatBytes(executor_memory_bytes) << " RAM/node, "
      << FormatBytes(local_storage_bytes) << " local storage/node, net "
      << FormatRate(network.bandwidth_bytes_per_sec) << ", kernels "
      << linalg::KernelVariantName(kernel_variant);
  if (intra_task_cores > 1) {
    out << ", " << intra_task_cores << " cores/task ("
        << concurrent_task_slots() << " slots)";
  }
  if (straggler_factor > 1.0) {
    out << ", straggler " << straggler_factor << "x every "
        << straggler_every;
  }
  if (speculation) {
    out << ", speculation @" << speculation_multiplier << "x median";
  }
  return out.str();
}

}  // namespace apspark::sparklet
