// Discrete-event model of the executing cluster.
//
// The cluster never runs real threads: callers hand it descriptions of work
// (per-task compute seconds, bytes moved) and it advances a virtual clock by
// the modelled makespan. Actual record processing happens in the calling
// (driver) thread — correctness is real, time is simulated. See DESIGN.md §5.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/math_utils.h"
#include "common/status.h"
#include "sparklet/block_manager.h"
#include "sparklet/config.h"
#include "sparklet/fault.h"
#include "sparklet/memory_accountant.h"
#include "sparklet/metrics.h"

namespace apspark::sparklet {

/// Longest-processing-time list scheduling of `task_seconds` onto `machines`
/// identical machines; returns the makespan. Exposed for testing.
double ListScheduleMakespan(std::vector<double> task_seconds, int machines);

/// Why a stage runs: normal forward progress, or replay of work a failure
/// destroyed. Recovery stages advance the clock like any other, and
/// additionally attribute their time to SimMetrics::recovery_seconds.
enum class StageKind {
  kNormal,
  kRecovery,
};

/// One executed stage, as the multi-tenant replay needs it: the effective
/// per-task costs (post jitter/straggler/speculation), the driver overheads,
/// and the stage's node-memory demand. VirtualCluster records these when
/// stage tracing is enabled; FairScheduler replays N jobs' traces onto
/// shared task slots.
struct StageRecord {
  std::string name;
  StageKind kind = StageKind::kNormal;
  /// Effective per-task costs (post jitter / straggler / speculation), so a
  /// replay onto a different slot count re-derives the makespan honestly.
  std::vector<double> task_seconds;
  /// Driver dispatch cost of the whole task set (overlaps compute; the
  /// replay exposes max(0, launch - makespan) like RunStage does).
  double launch_seconds = 0;
  double stage_overhead_seconds = 0;
  /// Non-stage clock the job accrued after this stage and before the next
  /// one (shuffle transfers, collects, broadcasts, shared-FS I/O): replayed
  /// as slot-independent serial time.
  double interstage_seconds = 0;
  std::uint64_t node_peak_bytes = 0;  // this stage's window node peak
};

class VirtualCluster {
 public:
  explicit VirtualCluster(ClusterConfig config);

  const ClusterConfig& config() const noexcept { return config_; }
  const SimMetrics& metrics() const noexcept { return metrics_; }
  SimMetrics& mutable_metrics() noexcept { return metrics_; }
  double now_seconds() const noexcept { return clock_seconds_; }

  /// Resets clock, metrics and storage occupancy (not the configuration,
  /// and not the membership — nodes lost or joined stay lost or joined).
  void Reset();

  /// Node that hosts a given partition, per the elastic placement map. On a
  /// cluster that never changed membership this is the historical
  /// round-robin `partition % nodes`; after losses/joins it reflects the
  /// deterministic rebalance (see BlockManager). Negative partition ids are
  /// rejected with a SPARKLET_CHECK.
  int NodeOfPartition(std::int64_t partition) const {
    return placement_.NodeOf(partition);
  }

  /// Elastic membership view (placement map, live/dead nodes, racks).
  const BlockManager& placement() const noexcept { return placement_; }
  int live_nodes() const noexcept { return placement_.live_nodes(); }

  /// Task slots the scheduler currently fills: dead nodes contribute none,
  /// joined nodes contribute theirs. Equals config().concurrent_task_slots()
  /// while membership is unchanged.
  int live_task_slots() const noexcept {
    const int per_task =
        config_.intra_task_cores < 1 ? 1 : config_.intra_task_cores;
    const int slots =
        placement_.live_nodes() * config_.cores_per_node / per_task;
    return slots < 1 ? 1 : slots;
  }

  /// Memory-residency accounting (driver / per-node live-bytes high water).
  MemoryAccountant& accountant() noexcept { return accountant_; }
  const MemoryAccountant& accountant() const noexcept { return accountant_; }

  /// Advances the clock by a stage of `task_seconds` (already including any
  /// per-task I/O the tasks performed), scheduled onto all cores, plus
  /// per-task launch overhead and fixed stage overhead. Records metrics and
  /// closes the accountant's per-stage memory window under `stage_name`.
  /// At the stage boundary, armed node-failure plans (see SetFaultHooks)
  /// fire: the lost node's local spill vanishes and the loss handler drops
  /// its cached partitions and preserved shuffle outputs.
  void RunStage(const std::vector<double>& task_seconds,
                const std::string& stage_name = {},
                StageKind kind = StageKind::kNormal);

  /// Wires fault injection into the stage loop. `injector` supplies armed
  /// membership plans (losses, rack losses, joins); `on_node_lost` is
  /// invoked (after the cluster wipes the node's local storage and
  /// rebalances its slots) so the owning context can drop the node's cached
  /// partitions and preserved shuffle map outputs. `on_migrate` (optional)
  /// is invoked with a join's slot moves and returns how many resident
  /// bytes actually travelled — the cluster charges that transfer through
  /// the network model. All must outlive the cluster; SparkletContext
  /// installs them at construction.
  void SetFaultHooks(
      FaultInjector* injector, std::function<void(int)> on_node_lost,
      std::function<std::uint64_t(const std::vector<BlockManager::Move>&)>
          on_migrate = {}) {
    fault_injector_ = injector;
    node_loss_handler_ = std::move(on_node_lost);
    migrate_handler_ = std::move(on_migrate);
  }

  /// Stage tracing for the multi-tenant replay: when enabled, every
  /// RunStage appends a StageRecord (effective task costs, overheads, node
  /// memory demand), and inter-stage clock advances are folded into the
  /// preceding record. Reset() clears the trace.
  void EnableStageTrace() { trace_enabled_ = true; }
  const std::vector<StageRecord>& stage_trace() const noexcept {
    return stage_trace_;
  }

  /// Recovery attribution for the checkpoint-restart path: marks "progress
  /// up to here is durable". On a later ChargeRestartRecovery(), everything
  /// the clock and task counter accumulated past the most recent mark is
  /// counted as destroyed-and-redone work (recovery_seconds /
  /// recomputed_tasks). SaveCheckpoint and the solver restart loop call
  /// these; Reset() clears the mark.
  void NoteDurableMark();
  void ChargeRestartRecovery();

  /// Charges an all-to-all shuffle write of `bytes_per_partition` map output:
  /// spill lands on each map partition's node (compressed), and the transfer
  /// cost of moving the non-local fraction over the network is added to the
  /// clock. Fails with RESOURCE_EXHAUSTED when any node's local storage
  /// overflows — the failure mode the paper hits with Blocked In-Memory.
  Status ChargeShuffle(const std::vector<std::uint64_t>& bytes_per_partition);

  /// Charges driver-side collect of `bytes` arriving over the driver NIC.
  void ChargeCollect(std::uint64_t bytes, std::int64_t partitions);

  /// Charges a driver->executors broadcast of `bytes` (torrent-style:
  /// log2(nodes) rounds of the full payload on the slowest path).
  void ChargeBroadcast(std::uint64_t bytes);

  /// Charges a write of `bytes` to the shared file system (driver side).
  void ChargeSharedFsWrite(std::uint64_t bytes, std::int64_t files = 1);

  /// Charges `bytes` of shared-FS reads issued concurrently by `readers`
  /// tasks (aggregate bandwidth shared).
  void ChargeSharedFsRead(std::uint64_t bytes, std::int64_t readers);

  /// Local storage used on `node` (shuffle staging high-water accounting;
  /// Spark preserves shuffle files for fault tolerance, so within one solver
  /// run the usage only grows — matching §5.2).
  std::uint64_t LocalStorageUsed(int node) const;
  std::uint64_t MaxLocalStorageUsed() const;

 private:
  /// Fires membership plans due at the just-completed stage boundary:
  /// rack losses expand to their live nodes, node losses rebalance and
  /// invoke the loss handler (refusing to kill the last live node or an
  /// already-dead one), joins issue a node and migrate stolen slots.
  void FireMembershipEvents(std::int64_t completed_stage);
  void LoseNode(int node);

  /// Emits the just-completed stage onto the virtual trace: one stage-level
  /// span on the driver lane plus one span per task on its node/slot lane,
  /// reconstructed from the LPT placement. Called only while a trace
  /// capture is active; purely observational.
  void EmitStageSpans(const std::string& stage_name, StageKind kind,
                      double stage_start,
                      const std::vector<LptPlacement>& placements);

  ClusterConfig config_;
  double clock_seconds_ = 0;
  SimMetrics metrics_;
  MemoryAccountant accountant_;
  BlockManager placement_;
  std::vector<std::uint64_t> node_storage_used_;
  FaultInjector* fault_injector_ = nullptr;
  std::function<void(int)> node_loss_handler_;
  std::function<std::uint64_t(const std::vector<BlockManager::Move>&)>
      migrate_handler_;
  bool trace_enabled_ = false;
  std::vector<StageRecord> stage_trace_;
  double trace_last_clock_ = 0;
  // Durable-progress mark of the checkpoint-restart recovery attribution
  // (clock/tasks plus the recovery totals already attributed at the mark,
  // so in-window replay stages are not double-counted by a restart).
  double durable_clock_seconds_ = 0;
  std::uint64_t durable_tasks_ = 0;
  double durable_recovery_seconds_ = 0;
  std::uint64_t durable_recomputed_tasks_ = 0;
};

}  // namespace apspark::sparklet
