// Discrete-event model of the executing cluster.
//
// The cluster never runs real threads: callers hand it descriptions of work
// (per-task compute seconds, bytes moved) and it advances a virtual clock by
// the modelled makespan. Actual record processing happens in the calling
// (driver) thread — correctness is real, time is simulated. See DESIGN.md §5.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "sparklet/config.h"
#include "sparklet/fault.h"
#include "sparklet/memory_accountant.h"
#include "sparklet/metrics.h"

namespace apspark::sparklet {

/// Longest-processing-time list scheduling of `task_seconds` onto `machines`
/// identical machines; returns the makespan. Exposed for testing.
double ListScheduleMakespan(std::vector<double> task_seconds, int machines);

/// Why a stage runs: normal forward progress, or replay of work a failure
/// destroyed. Recovery stages advance the clock like any other, and
/// additionally attribute their time to SimMetrics::recovery_seconds.
enum class StageKind {
  kNormal,
  kRecovery,
};

class VirtualCluster {
 public:
  explicit VirtualCluster(ClusterConfig config);

  const ClusterConfig& config() const noexcept { return config_; }
  const SimMetrics& metrics() const noexcept { return metrics_; }
  SimMetrics& mutable_metrics() noexcept { return metrics_; }
  double now_seconds() const noexcept { return clock_seconds_; }

  /// Resets clock, metrics and storage occupancy (not the configuration).
  void Reset();

  /// Node that hosts a given partition (round-robin assignment; Spark gives
  /// no placement guarantee, this is the neutral deterministic choice).
  int NodeOfPartition(std::int64_t partition) const noexcept {
    return static_cast<int>(partition % config_.nodes);
  }

  /// Memory-residency accounting (driver / per-node live-bytes high water).
  MemoryAccountant& accountant() noexcept { return accountant_; }
  const MemoryAccountant& accountant() const noexcept { return accountant_; }

  /// Advances the clock by a stage of `task_seconds` (already including any
  /// per-task I/O the tasks performed), scheduled onto all cores, plus
  /// per-task launch overhead and fixed stage overhead. Records metrics and
  /// closes the accountant's per-stage memory window under `stage_name`.
  /// At the stage boundary, armed node-failure plans (see SetFaultHooks)
  /// fire: the lost node's local spill vanishes and the loss handler drops
  /// its cached partitions and preserved shuffle outputs.
  void RunStage(const std::vector<double>& task_seconds,
                const std::string& stage_name = {},
                StageKind kind = StageKind::kNormal);

  /// Wires fault injection into the stage loop. `injector` supplies armed
  /// node-failure plans; `on_node_lost` is invoked (after the cluster wipes
  /// the node's local storage) so the owning context can drop the node's
  /// cached partitions and preserved shuffle map outputs. Both must outlive
  /// the cluster; SparkletContext installs them at construction.
  void SetFaultHooks(FaultInjector* injector,
                     std::function<void(int)> on_node_lost) {
    fault_injector_ = injector;
    node_loss_handler_ = std::move(on_node_lost);
  }

  /// Recovery attribution for the checkpoint-restart path: marks "progress
  /// up to here is durable". On a later ChargeRestartRecovery(), everything
  /// the clock and task counter accumulated past the most recent mark is
  /// counted as destroyed-and-redone work (recovery_seconds /
  /// recomputed_tasks). SaveCheckpoint and the solver restart loop call
  /// these; Reset() clears the mark.
  void NoteDurableMark();
  void ChargeRestartRecovery();

  /// Charges an all-to-all shuffle write of `bytes_per_partition` map output:
  /// spill lands on each map partition's node (compressed), and the transfer
  /// cost of moving the non-local fraction over the network is added to the
  /// clock. Fails with RESOURCE_EXHAUSTED when any node's local storage
  /// overflows — the failure mode the paper hits with Blocked In-Memory.
  Status ChargeShuffle(const std::vector<std::uint64_t>& bytes_per_partition);

  /// Charges driver-side collect of `bytes` arriving over the driver NIC.
  void ChargeCollect(std::uint64_t bytes, std::int64_t partitions);

  /// Charges a driver->executors broadcast of `bytes` (torrent-style:
  /// log2(nodes) rounds of the full payload on the slowest path).
  void ChargeBroadcast(std::uint64_t bytes);

  /// Charges a write of `bytes` to the shared file system (driver side).
  void ChargeSharedFsWrite(std::uint64_t bytes, std::int64_t files = 1);

  /// Charges `bytes` of shared-FS reads issued concurrently by `readers`
  /// tasks (aggregate bandwidth shared).
  void ChargeSharedFsRead(std::uint64_t bytes, std::int64_t readers);

  /// Local storage used on `node` (shuffle staging high-water accounting;
  /// Spark preserves shuffle files for fault tolerance, so within one solver
  /// run the usage only grows — matching §5.2).
  std::uint64_t LocalStorageUsed(int node) const;
  std::uint64_t MaxLocalStorageUsed() const;

 private:
  ClusterConfig config_;
  double clock_seconds_ = 0;
  SimMetrics metrics_;
  MemoryAccountant accountant_;
  std::vector<std::uint64_t> node_storage_used_;
  FaultInjector* fault_injector_ = nullptr;
  std::function<void(int)> node_loss_handler_;
  // Durable-progress mark of the checkpoint-restart recovery attribution
  // (clock/tasks plus the recovery totals already attributed at the mark,
  // so in-window replay stages are not double-counted by a restart).
  double durable_clock_seconds_ = 0;
  std::uint64_t durable_tasks_ = 0;
  double durable_recovery_seconds_ = 0;
  std::uint64_t durable_recomputed_tasks_ = 0;
};

}  // namespace apspark::sparklet
