#include "sparklet/memory_accountant.h"

#include <algorithm>

#include "sparklet/metrics.h"

namespace apspark::sparklet {

namespace {

/// Saturating release: an over-release (e.g. bytes charged before a Reset)
/// clamps to zero instead of wrapping.
std::uint64_t Shrink(std::uint64_t live, std::uint64_t bytes) noexcept {
  return bytes > live ? 0 : live - bytes;
}

}  // namespace

MemoryAccountant::MemoryAccountant(int nodes, SimMetrics* mirror)
    : mirror_(mirror),
      node_live_(static_cast<std::size_t>(nodes < 0 ? 0 : nodes), 0) {}

void MemoryAccountant::Reset(int nodes) {
  driver_live_ = 0;
  driver_peak_ = 0;
  node_peak_ = 0;
  node_live_.assign(static_cast<std::size_t>(nodes < 0 ? 0 : nodes), 0);
  window_driver_peak_ = 0;
  window_node_peak_ = 0;
  stage_peaks_.clear();
}

void MemoryAccountant::ResetPeaks() {
  driver_peak_ = driver_live_;
  node_peak_ = 0;
  for (const std::uint64_t live : node_live_) {
    node_peak_ = std::max(node_peak_, live);
  }
  window_driver_peak_ = 0;
  window_node_peak_ = 0;
  stage_peaks_.clear();
  if (mirror_ != nullptr) {
    mirror_->driver_peak_bytes = driver_peak_;
    mirror_->node_peak_bytes = node_peak_;
  }
}

void MemoryAccountant::NoteDriver(std::uint64_t resident) {
  driver_peak_ = std::max(driver_peak_, resident);
  window_driver_peak_ = std::max(window_driver_peak_, resident);
  if (mirror_ != nullptr) {
    mirror_->driver_peak_bytes =
        std::max(mirror_->driver_peak_bytes, driver_peak_);
  }
}

void MemoryAccountant::NoteNode(std::uint64_t resident) {
  node_peak_ = std::max(node_peak_, resident);
  window_node_peak_ = std::max(window_node_peak_, resident);
  if (mirror_ != nullptr) {
    mirror_->node_peak_bytes = std::max(mirror_->node_peak_bytes, node_peak_);
  }
}

void MemoryAccountant::ChargeDriver(std::uint64_t bytes) {
  driver_live_ += bytes;
  NoteDriver(driver_live_);
}

void MemoryAccountant::ReleaseDriver(std::uint64_t bytes) {
  driver_live_ = Shrink(driver_live_, bytes);
}

void MemoryAccountant::TouchDriver(std::uint64_t extra_bytes) {
  NoteDriver(driver_live_ + extra_bytes);
}

void MemoryAccountant::ChargeNode(int node, std::uint64_t bytes) {
  if (node_live_.empty()) return;
  auto& live =
      node_live_[static_cast<std::size_t>(node) % node_live_.size()];
  live += bytes;
  NoteNode(live);
}

void MemoryAccountant::ReleaseNode(int node, std::uint64_t bytes) {
  if (node_live_.empty()) return;
  auto& live =
      node_live_[static_cast<std::size_t>(node) % node_live_.size()];
  live = Shrink(live, bytes);
}

std::uint64_t MemoryAccountant::node_live_bytes(int node) const {
  if (node_live_.empty()) return 0;
  return node_live_[static_cast<std::size_t>(node) % node_live_.size()];
}

void MemoryAccountant::EndStage(const std::string& stage) {
  if (window_driver_peak_ != 0 || window_node_peak_ != 0) {
    stage_peaks_.push_back({stage, window_driver_peak_, window_node_peak_});
  }
  window_driver_peak_ = 0;
  window_node_peak_ = 0;
}

}  // namespace apspark::sparklet
