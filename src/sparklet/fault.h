// Deterministic fault injection.
//
// Tests use this to demonstrate the paper's purity argument (§3, §4.5):
// solvers built only from RDD transformations recover from task failures by
// lineage recomputation, while solvers that smuggle data through shared
// persistent storage have side effects the engine cannot replay.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>

namespace apspark::sparklet {

class FaultInjector {
 public:
  /// Arms `times` consecutive failures for tasks computing partition
  /// `partition` of any RDD whose name is `rdd_name`.
  void FailTask(const std::string& rdd_name, int partition, int times = 1) {
    plan_[{rdd_name, partition}] += times;
  }

  /// Consumes one armed failure if present. Called by the engine before
  /// each task attempt.
  bool ShouldFail(const std::string& rdd_name, int partition) {
    auto it = plan_.find({rdd_name, partition});
    if (it == plan_.end() || it->second <= 0) return false;
    if (--it->second == 0) plan_.erase(it);
    ++injected_;
    return true;
  }

  std::uint64_t injected_count() const noexcept { return injected_; }
  bool empty() const noexcept { return plan_.empty(); }
  void Clear() { plan_.clear(); }

 private:
  std::map<std::pair<std::string, int>, int> plan_;
  std::uint64_t injected_ = 0;
};

}  // namespace apspark::sparklet
