// Deterministic fault injection.
//
// Tests use this to demonstrate the paper's purity argument (§3, §4.5):
// solvers built only from RDD transformations recover from failures by
// lineage recomputation, while solvers that smuggle data through shared
// persistent storage have side effects the engine cannot replay.
//
// Two failure granularities:
//  * task failures — a single task attempt dies and is retried in place
//    (Spark's TaskSetManager path; the engine simply re-runs the task);
//  * node failures — a whole executor node is lost at a stage boundary.
//    Everything the node held disappears at once: cached RDD partitions,
//    preserved shuffle map outputs, and local shuffle spill. Recovery is
//    the interesting part — lineage recomputation for pure dataflow,
//    checkpoint restart for solvers with out-of-lineage side effects — and
//    is measured through SimMetrics::recovery_seconds/recomputed_tasks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace apspark::sparklet {

/// One planned executor loss: `node` dies when the engine completes the
/// stage whose 0-based ordinal is `at_stage` (stage ordinals count RunStage
/// calls since the last VirtualCluster::Reset). A plan armed for an ordinal
/// that has already passed fires at the next stage boundary instead, so a
/// schedule can never be silently skipped.
struct NodeFailurePlan {
  int node = 0;
  std::int64_t at_stage = 0;
};

/// One planned correlated failure: every live node of `rack` dies at the
/// stage boundary (expanded against the live membership at fire time, so a
/// node that already died — or joined the rack — is handled correctly).
struct RackFailurePlan {
  int rack = 0;
  std::int64_t at_stage = 0;
};

/// One planned elastic join: a fresh executor node enters the cluster at
/// the stage boundary and the placement map rebalances onto it (see
/// BlockManager::AddNode).
struct NodeJoinPlan {
  std::int64_t at_stage = 0;
};

class FaultInjector {
 public:
  /// Arms `times` consecutive failures for tasks computing partition
  /// `partition` of any RDD whose name is `rdd_name`.
  void FailTask(const std::string& rdd_name, int partition, int times = 1) {
    plan_[{rdd_name, partition}] += times;
  }

  /// Consumes one armed failure if present. Called by the engine before
  /// each task attempt.
  bool ShouldFail(const std::string& rdd_name, int partition) {
    auto it = plan_.find({rdd_name, partition});
    if (it == plan_.end() || it->second <= 0) return false;
    if (--it->second == 0) plan_.erase(it);
    ++injected_;
    return true;
  }

  /// Arms the loss of executor `node` at the completion of stage ordinal
  /// `at_stage` (see NodeFailurePlan). Multiple plans — even for the same
  /// node — are allowed; each fires exactly once.
  void FailNode(int node, std::int64_t at_stage) {
    node_plan_.push_back({node, at_stage});
  }

  /// Consumes every node plan due at or before completed stage ordinal
  /// `completed_stage`. Called by VirtualCluster at each stage boundary;
  /// returns the nodes lost at this boundary (possibly empty).
  std::vector<int> TakeNodeFailuresAt(std::int64_t completed_stage) {
    std::vector<int> fired;
    auto it = node_plan_.begin();
    while (it != node_plan_.end()) {
      if (it->at_stage <= completed_stage) {
        fired.push_back(it->node);
        ++injected_nodes_;
        it = node_plan_.erase(it);
      } else {
        ++it;
      }
    }
    return fired;
  }

  /// Arms the correlated loss of every live node in `rack` at the
  /// completion of stage ordinal `at_stage`.
  void FailRack(int rack, std::int64_t at_stage) {
    rack_plan_.push_back({rack, at_stage});
  }

  /// Arms an elastic node join at the completion of stage ordinal
  /// `at_stage`.
  void AddNode(std::int64_t at_stage) { join_plan_.push_back({at_stage}); }

  /// Consumes every rack plan due at or before `completed_stage`; returns
  /// the racks lost at this boundary. The cluster expands each rack to its
  /// live nodes before firing the individual losses.
  std::vector<int> TakeRackFailuresAt(std::int64_t completed_stage) {
    std::vector<int> fired;
    auto it = rack_plan_.begin();
    while (it != rack_plan_.end()) {
      if (it->at_stage <= completed_stage) {
        fired.push_back(it->rack);
        it = rack_plan_.erase(it);
      } else {
        ++it;
      }
    }
    return fired;
  }

  /// Consumes every join plan due at or before `completed_stage`; returns
  /// how many nodes join at this boundary.
  int TakeNodeJoinsAt(std::int64_t completed_stage) {
    int fired = 0;
    auto it = join_plan_.begin();
    while (it != join_plan_.end()) {
      if (it->at_stage <= completed_stage) {
        ++fired;
        it = join_plan_.erase(it);
      } else {
        ++it;
      }
    }
    return fired;
  }

  std::uint64_t injected_count() const noexcept { return injected_; }
  std::uint64_t injected_node_count() const noexcept {
    return injected_nodes_;
  }
  const std::vector<NodeFailurePlan>& pending_node_plans() const noexcept {
    return node_plan_;
  }
  const std::vector<RackFailurePlan>& pending_rack_plans() const noexcept {
    return rack_plan_;
  }
  const std::vector<NodeJoinPlan>& pending_join_plans() const noexcept {
    return join_plan_;
  }
  bool empty() const noexcept {
    return plan_.empty() && node_plan_.empty() && rack_plan_.empty() &&
           join_plan_.empty();
  }
  void Clear() {
    plan_.clear();
    node_plan_.clear();
    rack_plan_.clear();
    join_plan_.clear();
  }

 private:
  std::map<std::pair<std::string, int>, int> plan_;
  std::vector<NodeFailurePlan> node_plan_;
  std::vector<RackFailurePlan> rack_plan_;
  std::vector<NodeJoinPlan> join_plan_;
  std::uint64_t injected_ = 0;
  std::uint64_t injected_nodes_ = 0;
};

}  // namespace apspark::sparklet
