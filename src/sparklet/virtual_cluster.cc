#include "sparklet/virtual_cluster.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/bytes.h"
#include "common/math_utils.h"
#include "common/rng.h"
#include "obs/trace.h"

namespace apspark::sparklet {

namespace {

/// Emits a [before, after] span on the virtual driver lane for an
/// interstage clock advance (shuffle, collect, broadcast, shared FS,
/// rebalance). Call with the clock captured before and after the charge.
void TraceInterstage(const char* name, double before, double after,
                     std::uint64_t bytes) {
  if (!obs::TraceEnabled()) return;
  obs::Tracer::Get().VirtualSpan(name, obs::kDriverLane, before, after,
                                 "\"bytes\":" + std::to_string(bytes));
}

}  // namespace

double ListScheduleMakespan(std::vector<double> task_seconds, int machines) {
  return LptMakespan(std::move(task_seconds), machines);
}

VirtualCluster::VirtualCluster(ClusterConfig config)
    : config_(config),
      accountant_(config.nodes, &metrics_),
      placement_(config.nodes, config.racks),
      node_storage_used_(static_cast<std::size_t>(config_.nodes), 0) {}

void VirtualCluster::Reset() {
  clock_seconds_ = 0;
  metrics_ = SimMetrics{};
  std::fill(node_storage_used_.begin(), node_storage_used_.end(), 0);
  // Residency survives a clock reset (solvers reset after free RDD
  // population); only the high-water marks restart from the live set.
  accountant_.ResetPeaks();
  durable_clock_seconds_ = 0;
  durable_tasks_ = 0;
  durable_recovery_seconds_ = 0;
  durable_recomputed_tasks_ = 0;
  stage_trace_.clear();
  trace_last_clock_ = 0;
}

void VirtualCluster::NoteDurableMark() {
  durable_clock_seconds_ = clock_seconds_;
  durable_tasks_ = metrics_.tasks;
  durable_recovery_seconds_ = metrics_.recovery_seconds;
  durable_recomputed_tasks_ = metrics_.recomputed_tasks;
}

void VirtualCluster::ChargeRestartRecovery() {
  // Everything since the last durable mark (job start, or the most recent
  // checkpoint) is work the failure destroyed: the restart re-executes it.
  // Replay stages inside the window already attributed their share to
  // recovery (StageKind::kRecovery, RecoverLostMapOutputs), so only the
  // not-yet-attributed remainder is added — no double counting.
  const double window_clock =
      std::max(0.0, clock_seconds_ - durable_clock_seconds_);
  const double window_attributed =
      std::max(0.0, metrics_.recovery_seconds - durable_recovery_seconds_);
  metrics_.recovery_seconds += std::max(0.0, window_clock - window_attributed);
  const std::uint64_t window_tasks =
      metrics_.tasks > durable_tasks_ ? metrics_.tasks - durable_tasks_ : 0;
  const std::uint64_t window_recomputed =
      metrics_.recomputed_tasks > durable_recomputed_tasks_
          ? metrics_.recomputed_tasks - durable_recomputed_tasks_
          : 0;
  metrics_.recomputed_tasks +=
      window_tasks > window_recomputed ? window_tasks - window_recomputed : 0;
  metrics_.job_restarts += 1;
  // The restart resumes from the durable point; further losses are measured
  // against the progress made from here on.
  NoteDurableMark();
}

void VirtualCluster::RunStage(const std::vector<double>& task_seconds,
                              const std::string& stage_name, StageKind kind) {
  // Executor jitter (see ClusterConfig::straggler_spread): deterministic
  // per-(stage, task) slowdown factors. Over-decomposition (B > 1) lets the
  // list scheduler absorb stragglers; with one task per core the slowest
  // task sets the stage time — the effect behind the paper's B >= 2 advice.
  std::vector<double> jittered(task_seconds.size());
  for (std::size_t i = 0; i < task_seconds.size(); ++i) {
    const std::uint64_t h =
        Mix64((static_cast<std::uint64_t>(metrics_.stages) << 32) ^
              static_cast<std::uint64_t>(i) ^ 0x5bd1e995u);
    const double u =
        static_cast<double>(h >> 11) * 0x1.0p-53;  // uniform [0, 1)
    jittered[i] = task_seconds[i] * (1.0 + config_.straggler_spread * u);
    // Hard stragglers (failing disk, throttled node): a deterministic
    // 1-in-straggler_every subset of tasks runs straggler_factor x slower.
    if (config_.straggler_factor > 1.0 && config_.straggler_every > 0 &&
        h % static_cast<std::uint64_t>(config_.straggler_every) == 0) {
      jittered[i] *= config_.straggler_factor;
    }
  }
  // Speculative re-execution: tasks running past speculation_multiplier x
  // the stage median get a copy launched at the detection point; the copy
  // runs a median-like time, and the task finishes with whichever attempt
  // is first. This is what bounds the hard-straggler tail. The median is
  // taken over the *working* tasks only — stages routinely carry zero-cost
  // placeholders (surviving partitions of a recovery re-run, non-lost
  // entries of a replay plan), and including them would drag the median to
  // zero and mark every real task a straggler.
  if (config_.speculation) {
    std::vector<double> working;
    working.reserve(jittered.size());
    for (const double t : jittered) {
      if (t > 0.0) working.push_back(t);
    }
    if (working.size() >= 2) {
      std::sort(working.begin(), working.end());
      const double median = working[working.size() / 2];
      const double cutoff =
          median * std::max(1.0, config_.speculation_multiplier);
      for (double& t : jittered) {
        const double speculative_completion =
            cutoff + median + config_.task_overhead_seconds;
        if (t > cutoff && speculative_completion < t) {
          t = speculative_completion;
          metrics_.speculative_tasks += 1;
        }
      }
    }
  }
  // Inter-stage clock (shuffle transfers, collects, broadcasts) accrued
  // since the previous stage folds into that stage's trace record: the
  // multi-tenant replay treats it as slot-independent serial time.
  if (trace_enabled_ && !stage_trace_.empty()) {
    stage_trace_.back().interstage_seconds +=
        std::max(0.0, clock_seconds_ - trace_last_clock_);
  }
  // Executors run one task per *slot*: with intra-task parallelism enabled
  // (ClusterConfig::intra_task_cores > 1) each task occupies that many cores
  // of its executor, so fewer tasks run concurrently — the per-task charges
  // shrink (the cost model's intra-task makespan), the slot count shrinks to
  // match, and modelled time stays honest. Dead nodes contribute no slots;
  // joined nodes contribute theirs (identical to the static count while
  // membership is unchanged).
  const double launch =
      config_.task_overhead_seconds * static_cast<double>(task_seconds.size());
  if (trace_enabled_) {
    StageRecord record;
    record.name = stage_name;
    record.kind = kind;
    record.task_seconds = jittered;
    record.launch_seconds = launch;
    record.stage_overhead_seconds = config_.stage_overhead_seconds;
    record.node_peak_bytes = accountant_.window_node_peak_bytes();
    stage_trace_.push_back(std::move(record));
  }
  // Span tracing observes the schedule without perturbing it: LptSchedule
  // reproduces the exact LPT assignment for lane drawing, while the
  // makespan that advances the clock still comes from the untouched
  // ListScheduleMakespan call — bitwise-identical with tracing on or off.
  const bool span_tracing = obs::TraceEnabled();
  std::vector<LptPlacement> task_spans;
  if (span_tracing) task_spans = LptSchedule(jittered, live_task_slots());
  const double makespan =
      ListScheduleMakespan(std::move(jittered), live_task_slots());
  // Task launch overhead is driver-side but overlaps executor compute
  // (Spark dispatches the next wave while the current one runs), so a stage
  // costs whichever dominates: the dispatch loop or the parallel compute.
  const double exposed_overhead =
      config_.stage_overhead_seconds + std::max(0.0, launch - makespan);
  const double stage_start = clock_seconds_;
  clock_seconds_ += exposed_overhead + makespan;
  metrics_.scheduling_seconds += exposed_overhead;
  metrics_.compute_seconds += makespan;
  if (kind == StageKind::kRecovery) {
    metrics_.recovery_seconds += exposed_overhead + makespan;
  }
  metrics_.stages += 1;
  metrics_.tasks += task_seconds.size();
  accountant_.EndStage(stage_name);
  trace_last_clock_ = clock_seconds_;

  if (span_tracing) EmitStageSpans(stage_name, kind, stage_start, task_spans);

  // Stage boundary: armed membership plans fire now — rack losses, node
  // losses, elastic joins. A lost node's local spill vanishes (a
  // replacement executor starts with empty disks — the §5.2
  // monotonic-growth argument holds per executor incarnation), its
  // partition slots rebalance onto the survivors, and the owning context
  // drops its cached partitions and preserved shuffle map outputs through
  // the loss handler.
  if (fault_injector_ != nullptr) {
    FireMembershipEvents(static_cast<std::int64_t>(metrics_.stages) - 1);
  }
}

void VirtualCluster::EmitStageSpans(
    const std::string& stage_name, StageKind kind, double stage_start,
    const std::vector<LptPlacement>& placements) {
  auto& tracer = obs::Tracer::Get();
  const auto stage_index = static_cast<std::int64_t>(metrics_.stages) - 1;
  const bool recovery = kind == StageKind::kRecovery;
  tracer.VirtualSpan(
      stage_name.empty() ? "stage" : stage_name.c_str(), obs::kDriverLane,
      stage_start, clock_seconds_,
      "\"stage\":" + std::to_string(stage_index) +
          ",\"tasks\":" + std::to_string(placements.size()) +
          ",\"kind\":\"" + (recovery ? "recovery" : "normal") + "\"");
  if (placements.empty()) return;
  double makespan = 0;
  for (const auto& p : placements) makespan = std::max(makespan, p.end);
  // Compute occupies the stage tail; the exposed scheduling overhead is the
  // driver-lane lead-in before it.
  const double compute_start = clock_seconds_ - makespan;
  const int per_task =
      config_.intra_task_cores < 1 ? 1 : config_.intra_task_cores;
  const int slots_per_node =
      std::max(1, config_.cores_per_node / per_task);
  std::vector<int> live;
  live.reserve(static_cast<std::size_t>(placement_.live_nodes()));
  for (int n = 0; n < placement_.num_nodes(); ++n) {
    if (placement_.alive(n)) live.push_back(n);
  }
  const char* task_name = recovery ? "recovery-task" : "task";
  for (std::size_t i = 0; i < placements.size(); ++i) {
    const LptPlacement& p = placements[i];
    if (p.end <= p.start) continue;  // zero-cost placeholders add only noise
    const std::int64_t lane = 1 + p.machine;
    const auto node_ix = static_cast<std::size_t>(p.machine / slots_per_node);
    const int node = node_ix < live.size() ? live[node_ix] : -1;
    tracer.SetLaneName(lane, "node " + std::to_string(node) + " / slot " +
                                 std::to_string(p.machine % slots_per_node));
    tracer.VirtualSpan(task_name, lane, compute_start + p.start,
                       compute_start + p.end,
                       "\"task\":" + std::to_string(i) +
                           ",\"stage\":" + std::to_string(stage_index));
  }
}

void VirtualCluster::FireMembershipEvents(std::int64_t completed_stage) {
  // Correlated failures first: a rack plan expands to the rack's live
  // membership at fire time.
  for (const int rack : fault_injector_->TakeRackFailuresAt(completed_stage)) {
    for (const int node : placement_.LiveNodesInRack(rack)) LoseNode(node);
  }
  for (const int node : fault_injector_->TakeNodeFailuresAt(completed_stage)) {
    LoseNode(node);
  }
  const int joins = fault_injector_->TakeNodeJoinsAt(completed_stage);
  for (int j = 0; j < joins; ++j) {
    const BlockManager::JoinResult join = placement_.AddNode();
    accountant_.AddNode();
    node_storage_used_.push_back(0);
    metrics_.node_joins += 1;
    metrics_.migrated_partitions += join.moves.size();
    // Stolen slots carry their resident data to the newcomer: the context
    // moves the MemoryAccountant charges and reports the bytes that
    // actually travelled, which we push through the network model (all
    // transfers head to one fresh node — its single NIC is the bottleneck).
    const std::uint64_t bytes =
        migrate_handler_ ? migrate_handler_(join.moves) : 0;
    if (obs::TraceEnabled()) {
      obs::Tracer::Get().VirtualInstant(
          "node-join", obs::kDriverLane, clock_seconds_,
          "\"moves\":" + std::to_string(join.moves.size()));
    }
    if (bytes > 0 || !join.moves.empty()) {
      const double time =
          static_cast<double>(bytes) / config_.network.bandwidth_bytes_per_sec +
          config_.network.latency_seconds *
              static_cast<double>(join.moves.size());
      clock_seconds_ += time;
      metrics_.rebalance_seconds += time;
      metrics_.migration_bytes += bytes;
      TraceInterstage("rebalance", clock_seconds_ - time, clock_seconds_,
                      bytes);
    }
  }
}

void VirtualCluster::LoseNode(int node) {
  // Plans aimed at unknown or already-dead nodes are no-ops (a chaos
  // schedule may kill the same node twice); the last live node is never
  // killed — the engine models an elastic cluster, not a dead one.
  if (!placement_.alive(node) || placement_.live_nodes() <= 1) return;
  metrics_.executor_failures += 1;
  if (obs::TraceEnabled()) {
    obs::Tracer::Get().VirtualInstant("node-loss", obs::kDriverLane,
                                      clock_seconds_,
                                      "\"node\":" + std::to_string(node));
  }
  if (static_cast<std::size_t>(node) < node_storage_used_.size()) {
    node_storage_used_[static_cast<std::size_t>(node)] = 0;
  }
  // Rebalance BEFORE the loss handler runs: recovery recomputes the lost
  // partitions on their new owners, so placement must already point there.
  // The moves carry no bytes — the data died with the node.
  metrics_.migrated_partitions += placement_.RemoveNode(node).size();
  if (node_loss_handler_) node_loss_handler_(node);
}

Status VirtualCluster::ChargeShuffle(
    const std::vector<std::uint64_t>& bytes_per_partition) {
  std::uint64_t total = 0;
  for (std::size_t p = 0; p < bytes_per_partition.size(); ++p) {
    const auto compressed = static_cast<std::uint64_t>(
        static_cast<double>(bytes_per_partition[p]) *
        config_.shuffle_compression);
    total += bytes_per_partition[p];
    const int node = NodeOfPartition(static_cast<std::int64_t>(p));
    node_storage_used_[static_cast<std::size_t>(node)] += compressed;
  }
  metrics_.shuffle_bytes += total;
  metrics_.local_storage_peak_bytes =
      std::max(metrics_.local_storage_peak_bytes, MaxLocalStorageUsed());

  // Transfer: on average (nodes-1)/nodes of the data crosses the network
  // in compressed form; all NICs move data concurrently, so effective
  // bandwidth is nodes * per-node bandwidth. Only live nodes have NICs:
  // after a loss the survivors shoulder the transfer, after a join the
  // newcomer helps — identical to the static count while membership is
  // unchanged.
  const double nodes = static_cast<double>(placement_.live_nodes());
  const double cross_fraction = nodes > 1 ? (nodes - 1.0) / nodes : 0.0;
  const double wire_bytes = static_cast<double>(total) * cross_fraction *
                            config_.shuffle_compression;
  const double time =
      wire_bytes / (config_.network.bandwidth_bytes_per_sec * nodes) +
      config_.network.latency_seconds *
          static_cast<double>(bytes_per_partition.size());
  clock_seconds_ += time;
  metrics_.shuffle_seconds += time;
  TraceInterstage("shuffle", clock_seconds_ - time, clock_seconds_, total);

  const int known_nodes = static_cast<int>(node_storage_used_.size());
  for (int node = 0; node < known_nodes; ++node) {
    if (node_storage_used_[static_cast<std::size_t>(node)] >
        config_.local_storage_bytes) {
      std::ostringstream msg;
      msg << "local storage exhausted on node " << node << ": "
          << FormatBytes(node_storage_used_[static_cast<std::size_t>(node)])
          << " used of " << FormatBytes(config_.local_storage_bytes)
          << " (shuffle spill is preserved for fault tolerance and grows "
             "with every iteration)";
      return ResourceExhaustedError(msg.str());
    }
  }
  return Status::Ok();
}

void VirtualCluster::ChargeCollect(std::uint64_t bytes,
                                   std::int64_t partitions) {
  // The collected result is momentarily resident on the driver.
  accountant_.TouchDriver(bytes);
  // All data funnels into the single driver NIC.
  const double time =
      static_cast<double>(bytes) / config_.network.bandwidth_bytes_per_sec +
      config_.network.latency_seconds * static_cast<double>(partitions);
  clock_seconds_ += time;
  metrics_.collect_seconds += time;
  metrics_.collect_bytes += bytes;
  TraceInterstage("collect", clock_seconds_ - time, clock_seconds_, bytes);
}

void VirtualCluster::ChargeBroadcast(std::uint64_t bytes) {
  // The broadcast source lives on the driver while the torrent runs.
  accountant_.TouchDriver(bytes);
  const double rounds = std::max(
      1.0, std::ceil(std::log2(std::max(2, placement_.live_nodes()))));
  const double time = rounds * (static_cast<double>(bytes) /
                                    config_.network.bandwidth_bytes_per_sec +
                                config_.network.latency_seconds);
  clock_seconds_ += time;
  metrics_.broadcast_seconds += time;
  metrics_.broadcast_bytes += bytes;
  TraceInterstage("broadcast", clock_seconds_ - time, clock_seconds_, bytes);
}

void VirtualCluster::ChargeSharedFsWrite(std::uint64_t bytes,
                                         std::int64_t files) {
  const double time =
      static_cast<double>(bytes) /
          config_.shared_fs.aggregate_bandwidth_bytes_per_sec +
      config_.shared_fs.file_overhead_seconds * static_cast<double>(files);
  clock_seconds_ += time;
  metrics_.shared_fs_seconds += time;
  metrics_.shared_fs_written_bytes += bytes;
  TraceInterstage("sharedfs-write", clock_seconds_ - time, clock_seconds_,
                  bytes);
}

void VirtualCluster::ChargeSharedFsRead(std::uint64_t bytes,
                                        std::int64_t readers) {
  const double time =
      static_cast<double>(bytes) /
          config_.shared_fs.aggregate_bandwidth_bytes_per_sec +
      config_.shared_fs.file_overhead_seconds *
          static_cast<double>(std::max<std::int64_t>(1, readers)) /
          static_cast<double>(config_.total_cores());
  clock_seconds_ += time;
  metrics_.shared_fs_seconds += time;
  metrics_.shared_fs_read_bytes += bytes;
  TraceInterstage("sharedfs-read", clock_seconds_ - time, clock_seconds_,
                  bytes);
}

std::uint64_t VirtualCluster::LocalStorageUsed(int node) const {
  return node_storage_used_[static_cast<std::size_t>(node)];
}

std::uint64_t VirtualCluster::MaxLocalStorageUsed() const {
  std::uint64_t peak = 0;
  for (std::uint64_t used : node_storage_used_) peak = std::max(peak, used);
  return peak;
}

}  // namespace apspark::sparklet
