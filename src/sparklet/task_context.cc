#include "sparklet/task_context.h"
#include <algorithm>

namespace apspark::sparklet {

Result<SharedStorage::Object> TaskContext::ReadShared(const std::string& key) {
  auto obj = storage_->Get(key);
  if (!obj.ok()) return obj.status();
  // Each reading task sees its fair share of the aggregate FS bandwidth:
  // aggregate divided by the number of tasks that run concurrently in the
  // current stage (set by the engine; at most the core count).
  const int concurrent =
      std::min(stage_concurrency_, config_->total_cores());
  const double per_reader_bw =
      config_->shared_fs.aggregate_bandwidth_bytes_per_sec /
      static_cast<double>(concurrent < 1 ? 1 : concurrent);
  task_seconds_ += static_cast<double>(obj->logical_bytes) / per_reader_bw +
                   config_->shared_fs.file_overhead_seconds;
  shared_read_bytes_ += obj->logical_bytes;
  return obj;
}

}  // namespace apspark::sparklet
