#include "sparklet/task_context.h"
#include <algorithm>

namespace apspark::sparklet {

void TaskContext::ChargeSharedRead(std::uint64_t logical_bytes) noexcept {
  // Each reading task sees its fair share of the aggregate FS bandwidth:
  // aggregate divided by the number of tasks that run concurrently in the
  // current stage (set by the engine; at most the core count).
  const int concurrent =
      std::min(stage_concurrency_, config_->total_cores());
  const double per_reader_bw =
      config_->shared_fs.aggregate_bandwidth_bytes_per_sec /
      static_cast<double>(concurrent < 1 ? 1 : concurrent);
  task_seconds_ += static_cast<double>(logical_bytes) / per_reader_bw +
                   config_->shared_fs.file_overhead_seconds;
  shared_read_bytes_ += logical_bytes;
}

Result<SharedStorage::Object> TaskContext::ReadShared(const std::string& key) {
  auto obj = storage_->Get(key);
  if (!obj.ok()) return obj.status();
  ChargeSharedRead(obj->logical_bytes);
  return obj;
}

Result<linalg::BlockRef> TaskContext::ReadSharedBlock(const std::string& key) {
  auto block = storage_->GetBlock(key);
  if (!block.ok()) return block.status();
  ChargeSharedRead(block->serialized_bytes());
  return block;
}

}  // namespace apspark::sparklet
