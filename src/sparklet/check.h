// Engine invariant checks.
//
// SPARKLET_CHECK guards programming-error preconditions inside the engine
// (a negative partition id reaching the placement map, a malformed move
// list). Violations throw std::logic_error with the failing expression and
// source location — loud and testable, unlike the silent wrap-arounds they
// replace (a negative id fed to `partition % nodes` used to yield a negative
// node index and walk off every per-node array).
#pragma once

#include <stdexcept>
#include <string>

#define SPARKLET_CHECK(cond, msg)                                         \
  do {                                                                    \
    if (!(cond)) {                                                        \
      throw std::logic_error(std::string("SPARKLET_CHECK failed at ") +   \
                             __FILE__ + ":" + std::to_string(__LINE__) +  \
                             ": " #cond " — " + (msg));                   \
    }                                                                     \
  } while (false)
