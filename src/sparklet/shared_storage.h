// Shared persistent storage side channel (the paper's GPFS).
//
// The impure solvers (Repeated Squaring, Blocked Collect/Broadcast, staged
// KSSP) bypass Spark's shuffle by writing blocks to a shared file system from
// the driver and reading them back inside executor tasks ("we do not
// broadcast the column, but rather store its blocks in a shared file system
// available to driver and executor nodes", §4.2). This class emulates that
// channel with two object kinds:
//  * byte objects — serialized buffers (checkpoints, manifests: payloads
//    that must survive a real durability round-trip);
//  * block objects — immutable ref-counted BlockRefs, the zero-copy path of
//    the staging protocol. The virtual cluster is still charged the full
//    logical bytes the real file would occupy; only the *host-side* copy
//    (serialize on write, deserialize per reading task) is gone.
//
// Because writes happen outside the RDD lineage they are side effects, which
// is precisely what makes those solvers non-fault-tolerant; the engine tags
// reads so tests can demonstrate the hazard.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "linalg/block_ref.h"

namespace apspark::sparklet {

class SharedStorage {
 public:
  struct Object {
    std::shared_ptr<const std::vector<std::uint8_t>> payload;
    /// Size charged for accounting; for phantom blocks the payload is just a
    /// header but logical_bytes reflects the real block.
    std::uint64_t logical_bytes = 0;
  };

  /// Stores `bytes` under `key`, overwriting any previous object.
  void Put(const std::string& key, std::vector<std::uint8_t> bytes,
           std::uint64_t logical_bytes);

  /// Stores a block as a shared immutable ref (no serialization; the
  /// logical size is the ref's cached serialized_bytes()).
  void PutBlock(const std::string& key, linalg::BlockRef block);

  /// Fetches the object stored under `key`.
  Result<Object> Get(const std::string& key) const;

  /// Fetches the block stored under `key`; fails when the key is missing or
  /// holds a byte object.
  Result<linalg::BlockRef> GetBlock(const std::string& key) const;

  bool Contains(const std::string& key) const;

  /// Removes every object (e.g. between solver iterations/tests). Models an
  /// external cleanup; no time is charged.
  void Clear();

  /// Deletes all keys with the given prefix; returns how many were removed.
  std::size_t ErasePrefix(const std::string& prefix);

  std::size_t object_count() const noexcept { return objects_.size(); }
  std::uint64_t total_logical_bytes() const noexcept { return total_bytes_; }

 private:
  struct Entry {
    Object object;
    linalg::BlockRef block;
  };
  std::unordered_map<std::string, Entry> objects_;
  std::uint64_t total_bytes_ = 0;
};

}  // namespace apspark::sparklet
