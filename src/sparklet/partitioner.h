// Key partitioners.
//
// Spark distributes an RDD's records to partitions by applying a partitioner
// to each record's key. Two implementations matter for the paper:
//  * PortableHashPartitioner — a faithful replica of pySpark's default
//    `portable_hash` (CPython 2 tuple hashing + non-negative modulo). The
//    paper traces the Blocked In-Memory load imbalance to this function's
//    "XOR based mixing of elements of the tuple, which in case of
//    upper-triangular matrix leads to many collisions" (§5.3).
//  * The multi-diagonal partitioner of §5.3 lives with the APSP layer
//    (apsp/partitioners.h) since it is defined over block keys.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <utility>

namespace apspark::sparklet {

/// Replica of CPython 2's integer hash (identity on small ints) used by
/// pySpark's portable_hash for int keys.
std::int64_t PortableHashInt(std::int64_t value) noexcept;

/// Replica of CPython 2's tuple hash, which pySpark's portable_hash applies
/// to tuple keys such as the paper's block coordinates (I, J).
std::int64_t PortableHashTuple2(std::int64_t a, std::int64_t b) noexcept;

/// Spark's Partitioner.nonNegativeMod.
int NonNegativeMod(std::int64_t hash, int num_partitions) noexcept;

/// Abstract partitioner over keys of type K.
template <typename K>
class Partitioner {
 public:
  virtual ~Partitioner() = default;
  virtual int num_partitions() const noexcept = 0;
  virtual int PartitionOf(const K& key) const = 0;
  virtual std::string name() const = 0;
};

template <typename K>
using PartitionerPtr = std::shared_ptr<const Partitioner<K>>;

namespace internal {

inline std::int64_t PortableHashKey(std::int64_t key) noexcept {
  return PortableHashInt(key);
}
inline std::int64_t PortableHashKey(
    const std::pair<std::int64_t, std::int64_t>& key) noexcept {
  return PortableHashTuple2(key.first, key.second);
}

}  // namespace internal

/// pySpark's default partitioner ("the partitioner one would use ad hoc").
/// Works for any key type K that provides internal::PortableHashKey or a
/// `PortableHash()` member.
template <typename K>
class PortableHashPartitioner final : public Partitioner<K> {
 public:
  explicit PortableHashPartitioner(int num_partitions)
      : num_partitions_(num_partitions) {}

  int num_partitions() const noexcept override { return num_partitions_; }

  int PartitionOf(const K& key) const override {
    if constexpr (requires(const K& k) { k.PortableHash(); }) {
      return NonNegativeMod(key.PortableHash(), num_partitions_);
    } else {
      return NonNegativeMod(internal::PortableHashKey(key), num_partitions_);
    }
  }

  std::string name() const override { return "PH"; }

 private:
  int num_partitions_;
};

template <typename K>
PartitionerPtr<K> MakePortableHash(int num_partitions) {
  return std::make_shared<PortableHashPartitioner<K>>(num_partitions);
}

}  // namespace apspark::sparklet
