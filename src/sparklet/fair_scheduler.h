// Multi-tenant fair-share scheduling over stage traces.
//
// The sparklet engine executes one job at a time in the driver thread —
// record processing is real, so two jobs cannot interleave their actual
// compute. Multi-tenancy is therefore modelled where it belongs, in the
// discrete-event layer: each tenant job first runs SOLO (producing bitwise
// results and a stage trace — VirtualCluster::EnableStageTrace records every
// stage's effective task costs, overheads and node-memory demand), then a
// FairScheduler replays the N traces onto the shared cluster:
//
//  * fair sharing  — jobs with a runnable stage split the cluster's task
//    slots evenly (each gets max(1, slots / active)); a stage's share is
//    fixed when it starts (Spark's FAIR pools re-weigh at task granularity;
//    stage granularity is the honest equivalent for a stage-level trace).
//  * admission     — a stage declares its node-memory demand (the solo
//    run's per-stage window peak). If starting it would push the tenants'
//    combined demand past the executor memory budget, the job WAITS until a
//    running stage finishes (SimMetrics::admission_wait_seconds). A job
//    that could never fit alone does not deadlock: it is force-admitted and
//    the overflow spills to local disk (SimMetrics::spilled_bytes), paying
//    the spill write through the storage-bandwidth model.
//
// Everything is deterministic — traces in, virtual seconds out — so the
// multi-tenant bench gates on exact modelled numbers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sparklet/config.h"
#include "sparklet/metrics.h"
#include "sparklet/virtual_cluster.h"

namespace apspark::sparklet {

struct TenantJob {
  std::string name;
  std::vector<StageRecord> stages;
};

struct TenantReport {
  /// Virtual time until the last tenant finishes.
  double makespan_seconds = 0;
  /// Sum of the jobs' solo runtimes at full slot count (the serial
  /// baseline a fair schedule is judged against).
  double serial_seconds = 0;
  double admission_wait_seconds = 0;
  std::uint64_t spilled_bytes = 0;
  std::vector<double> job_finish_seconds;
  std::vector<double> job_admission_wait_seconds;
  /// Smallest slot share each job ran any stage with.
  std::vector<int> job_min_slots;
};

class FairScheduler {
 public:
  explicit FairScheduler(ClusterConfig config) : config_(config) {}

  /// Replays `jobs` concurrently under fair sharing + memory admission.
  /// When `metrics` is given, admission waits and spilled bytes fold into
  /// it (the bench surfaces them through SimMetrics::Summary).
  TenantReport Run(const std::vector<TenantJob>& jobs,
                   SimMetrics* metrics = nullptr) const;

 private:
  ClusterConfig config_;
};

}  // namespace apspark::sparklet
