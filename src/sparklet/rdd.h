// Sparklet: a miniature Apache-Spark-style dataflow engine.
//
// The engine reproduces the Spark semantics the paper's solvers exercise:
//  * lazy, immutable RDDs with lineage (recomputation on task failure);
//  * narrow transformations (map / filter / flatMap / union) fused into a
//    single stage, exactly like Spark pipelining;
//  * wide transformations (partitionBy / reduceByKey / combineByKey) that
//    run a map side writing partitioned, compressed spill to each node's
//    local storage, then a reduce side fetching over the modelled network —
//    Spark preserves shuffle files for fault tolerance, so local-storage
//    usage grows monotonically within a job (the failure mode the paper
//    observes for Blocked In-Memory, §5.2);
//  * driver actions: collect (funnelled through the driver NIC) and count;
//  * torrent-style broadcast and a shared-persistent-storage side channel.
//
// Execution model: record processing is real and runs in the driver thread
// (correctness is bit-for-bit testable); *time* is virtual, advanced by the
// discrete-event VirtualCluster using the calibrated CostModel plus byte
// accounting from Serde<T>. See DESIGN.md §5.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/status.h"
#include "linalg/cost_model.h"
#include "sparklet/config.h"
#include "sparklet/fault.h"
#include "sparklet/metrics.h"
#include "sparklet/partitioner.h"
#include "sparklet/serde.h"
#include "sparklet/shared_storage.h"
#include "sparklet/shuffle_state.h"
#include "sparklet/task_context.h"
#include "sparklet/virtual_cluster.h"

namespace apspark::sparklet {

/// Thrown when the simulated job cannot continue (virtual storage exhausted,
/// task retries exceeded). Solver entry points catch this and surface the
/// wrapped Status; it never escapes the library API.
class SparkletAbort : public std::runtime_error {
 public:
  explicit SparkletAbort(Status status)
      : std::runtime_error(status.ToString()), status_(std::move(status)) {}
  const Status& status() const noexcept { return status_; }

 private:
  Status status_;
};

class SparkletContext;

/// Type-erased lineage node (for DAG bookkeeping and boundary dependencies).
class RddBase {
 public:
  virtual ~RddBase() = default;
  virtual const std::string& name() const noexcept = 0;
  virtual int id() const noexcept = 0;
  virtual int num_partitions() const noexcept = 0;
  virtual void EnsureMaterialized() = 0;
  virtual bool IsBoundary() const noexcept = 0;
  virtual std::size_t MaterializedRecordCount() const noexcept = 0;
  /// Executor loss: drops every cached partition hosted on `node` (marking
  /// them lost-by-failure so their recomputation is attributed to recovery).
  /// Returns how many partitions were dropped.
  virtual int DropNodePartitions(int node) = 0;
  /// Elastic join rebalance: cached partitions whose slot moved travel to
  /// the new owner (accountant release on the donor, charge on the
  /// newcomer). Returns the bytes that moved.
  virtual std::uint64_t MigratePartitions(
      const std::vector<BlockManager::Move>& moves) = 0;
};

template <typename T>
class Rdd;
template <typename T>
using RddPtr = std::shared_ptr<Rdd<T>>;

namespace internal {

/// Collects the stage-boundary dependencies of a new (narrow) RDD: boundary
/// parents themselves, plus boundaries inherited through non-boundary
/// parents (whose compute will be fused into the child's stage).
std::vector<std::shared_ptr<RddBase>> CollectBoundaries(
    const std::vector<std::shared_ptr<RddBase>>& parents);

}  // namespace internal

template <typename T>
class Rdd final : public RddBase, public std::enable_shared_from_this<Rdd<T>> {
 public:
  using Element = T;
  using Partition = std::vector<T>;
  /// Computes one partition; may recursively pull (fused) parent partitions.
  using ComputeFn = std::function<Partition(int, TaskContext&)>;

  // Constructed via SparkletContext / transformations; use the factory
  // functions below rather than this constructor.
  Rdd(SparkletContext* ctx, std::string name, int num_partitions,
      ComputeFn compute, std::vector<std::shared_ptr<RddBase>> parents,
      bool cache);

  /// Cached partitions release their accounted live bytes when the RDD dies
  /// (the context always outlives its RDDs), and the context forgets the
  /// node for failure handling. Defined out of line (needs SparkletContext).
  ~Rdd() override;

  // -- RddBase ----------------------------------------------------------
  const std::string& name() const noexcept override { return name_; }
  int id() const noexcept override { return id_; }
  int num_partitions() const noexcept override { return num_partitions_; }
  bool IsBoundary() const noexcept override { return cache_; }
  std::size_t MaterializedRecordCount() const noexcept override;

  /// Runs the stage(s) needed to cache this RDD's partitions (no-op unless
  /// the RDD is a caching boundary: parallelized, shuffled, or persisted).
  void EnsureMaterialized() override;

  // -- transformations (lazy) -------------------------------------------
  /// fn: (const T&, TaskContext&) -> U.
  template <typename F>
  auto Map(std::string op_name, F fn)
      -> RddPtr<std::invoke_result_t<F, const T&, TaskContext&>>;

  /// pred: (const T&) -> bool.
  template <typename Pred>
  RddPtr<T> Filter(std::string op_name, Pred pred);

  /// fn: (const T&, TaskContext&, std::vector<U>& out) -> void (appends).
  template <typename U, typename F>
  RddPtr<U> FlatMap(std::string op_name, F fn);

  /// fn: (std::vector<T>&& partition, TaskContext&) -> std::vector<U>.
  /// Runs once per task over the whole partition, so per-task state (e.g.
  /// caching shared-storage reads, as the paper's executors do with column
  /// blocks) is expressible.
  template <typename U, typename F>
  RddPtr<U> MapPartitions(std::string op_name, F fn);

  /// Marks this RDD as cached: first materialization stores partitions, and
  /// downstream stages read them instead of recomputing the lineage.
  RddPtr<T> Persist();

  /// Drops cached data (lineage remains; a later access recomputes).
  void Unpersist();

  /// Simulates loss of one cached partition (executor failure). The next
  /// access recomputes this RDD from its lineage, attributed to recovery.
  void DropPartition(int partition);

  /// Executor loss (see RddBase): drops cached partitions hosted on `node`.
  int DropNodePartitions(int node) override;

  /// Join rebalance (see RddBase): moves cached partitions with their slot.
  std::uint64_t MigratePartitions(
      const std::vector<BlockManager::Move>& moves) override;

  // -- actions -----------------------------------------------------------
  /// Gathers every record on the driver (charges network + driver deserde).
  Partition Collect();

  /// Number of records (cheap driver action).
  std::int64_t Count();

  // -- engine internals (public: used by free-function transformations) --
  /// Fused pull: cached partitions are read back; uncached ones recompute.
  Partition ComputeOrRead(int partition, TaskContext& tc);

  SparkletContext* ctx() const noexcept { return ctx_; }
  const std::vector<std::shared_ptr<RddBase>>& parents() const noexcept {
    return parents_;
  }
  bool materialized() const noexcept { return materialized_; }

  /// Replaces the compute function (used by shuffle construction).
  void SetComputeForShuffle(ComputeFn compute) { compute_ = std::move(compute); }

 private:
  void RunStageAndCache();
  Partition RunTaskWithRetries(int partition, TaskContext& tc);
  /// Memory accounting of the partition cache: a stored partition's
  /// serialized bytes are live on its node until dropped.
  void ChargeCached(int partition);
  void ReleaseCached(int partition);
  void ReleaseAllCached();

  SparkletContext* ctx_;
  std::string name_;
  int id_;
  int num_partitions_;
  ComputeFn compute_;
  std::vector<std::shared_ptr<RddBase>> parents_;
  std::vector<std::shared_ptr<RddBase>> boundary_deps_;
  bool cache_;
  bool materialized_ = false;
  std::vector<std::optional<Partition>> store_;
  /// Bytes charged to the accountant per cached partition (0 = uncharged).
  std::vector<std::uint64_t> store_bytes_;
  /// Node each cached partition's bytes were charged to (-1 = uncharged).
  /// Releases always use this record: with elastic membership the placement
  /// map can change between charge and release, and recomputing the owner
  /// at release time would corrupt the accountant's per-node ledger.
  std::vector<int> store_node_;
  /// Partitions whose cached copy an executor failure destroyed: their
  /// recomputation counts into recovery_seconds / recomputed_tasks.
  std::vector<bool> lost_by_failure_;
  /// Materialization attempts so far: re-runs suffix the stage key
  /// ("name#r2") so per-stage metrics and peak windows never collide with
  /// the original run.
  int run_attempts_ = 0;

  friend class SparkletContext;
  template <typename>
  friend class Rdd;  // cross-type access from Map/FlatMap/MapPartitions
};

// ---------------------------------------------------------------------------
// Driver context
// ---------------------------------------------------------------------------

class SparkletContext {
 public:
  explicit SparkletContext(ClusterConfig config,
                           linalg::CostModel cost_model = {})
      : cluster_(config), cost_model_(cost_model) {
    // The intra-task parallelism dimension travels with the cluster shape:
    // stamping it here keeps every ChargeCompute site and the stage slot
    // count (VirtualCluster::RunStage) consistent by construction.
    cost_model_.intra_task_cores = config.intra_task_cores;
    // Membership plans fire at stage boundaries inside the cluster; the
    // context owns the state a loss destroys (cached partitions, preserved
    // shuffle outputs) and the state a join rebalance migrates, so it
    // handles both sides.
    cluster_.SetFaultHooks(
        &fault_injector_, [this](int node) { HandleNodeLost(node); },
        [this](const std::vector<BlockManager::Move>& moves) {
          return HandleMembershipMigrate(moves);
        });
  }

  VirtualCluster& cluster() noexcept { return cluster_; }
  const ClusterConfig& config() const noexcept { return cluster_.config(); }
  const linalg::CostModel& cost_model() const noexcept { return cost_model_; }
  SharedStorage& shared_storage() noexcept { return shared_storage_; }
  FaultInjector& fault_injector() noexcept { return fault_injector_; }
  const SimMetrics& metrics() const noexcept { return cluster_.metrics(); }
  double now_seconds() const noexcept { return cluster_.now_seconds(); }

  TaskContext MakeTaskContext() {
    return TaskContext(&cost_model_, &shared_storage_, &config());
  }

  int NextRddId() noexcept { return next_rdd_id_++; }

  /// Creates a pre-materialized RDD by chunking `data` into
  /// `num_partitions` equal ranges (Spark's default slicing).
  template <typename T>
  RddPtr<T> Parallelize(std::string name, std::vector<T> data,
                        int num_partitions);

  /// Creates a pre-materialized pair RDD placing each record according to
  /// `partitioner` (the paper's solvers always start from a partitioned A).
  template <typename K, typename V>
  RddPtr<std::pair<K, V>> ParallelizePartitioned(
      std::string name, const std::vector<std::pair<K, V>>& data,
      PartitionerPtr<K> partitioner);

  /// Unions RDDs: Spark semantics — partitions are concatenated, each
  /// component keeps its own partitioning (the paper's partition-blowup
  /// discussion in §5.2 depends on this).
  template <typename T>
  RddPtr<T> Union(std::string name, std::vector<RddPtr<T>> rdds);

  /// Brace-friendly overload: ctx.Union("u", {a, b, c}).
  template <typename T>
  RddPtr<T> Union(std::string name, std::initializer_list<RddPtr<T>> rdds) {
    return Union(std::move(name), std::vector<RddPtr<T>>(rdds));
  }

  /// Driver-side write of a serialized object to shared persistent storage
  /// (the impure side channel); charges shared-FS time.
  void DriverWriteShared(const std::string& key,
                         std::vector<std::uint8_t> bytes,
                         std::uint64_t logical_bytes) {
    cluster_.ChargeSharedFsWrite(logical_bytes, 1);
    shared_storage_.Put(key, std::move(bytes), logical_bytes);
  }

  /// Zero-copy variant: stages an immutable block ref (full logical bytes
  /// are charged, no host-side serialization happens).
  void DriverWriteSharedBlock(const std::string& key, linalg::BlockRef block) {
    cluster_.ChargeSharedFsWrite(block.serialized_bytes(), 1);
    shared_storage_.PutBlock(key, std::move(block));
  }

  /// Driver-side broadcast of `logical_bytes` to all executors.
  void Broadcast(std::uint64_t logical_bytes) {
    cluster_.ChargeBroadcast(logical_bytes);
  }

  // -- fault-tolerance plumbing (engine-internal) ------------------------

  /// Every live RDD registers so an executor loss can reach its cache.
  void RegisterRdd(RddBase* rdd) { live_rdds_.push_back(rdd); }
  void UnregisterRdd(RddBase* rdd) {
    std::erase(live_rdds_, rdd);
  }

  /// Shuffles register their preserved map outputs; the registry holds weak
  /// refs (the states live in the shuffle RDDs' compute closures).
  void RegisterShuffle(const std::shared_ptr<ShuffleMapState>& state) {
    shuffles_.push_back(state);
  }

  /// Executor `node` died: drop its cached partitions across every live RDD
  /// and mark its share of every preserved shuffle map output lost. Lazy
  /// recovery does the rest — lost partitions recompute through lineage on
  /// next access, lost map outputs replay before the next reduce-side read.
  void HandleNodeLost(int node) {
    for (RddBase* rdd : live_rdds_) rdd->DropNodePartitions(node);
    std::size_t keep = 0;
    for (auto& weak : shuffles_) {
      auto state = weak.lock();
      if (!state) continue;  // shuffle RDD already destroyed: prune
      state->MarkNodeLost(node);
      shuffles_[keep++] = std::move(weak);
    }
    shuffles_.resize(keep);
  }

  /// An elastic join stole partition slots from the survivors: resident
  /// cached partitions and preserved shuffle outputs travel with their slot
  /// to the newcomer. Returns the bytes that moved; the cluster charges the
  /// transfer through the network model.
  std::uint64_t HandleMembershipMigrate(
      const std::vector<BlockManager::Move>& moves) {
    std::uint64_t bytes = 0;
    for (RddBase* rdd : live_rdds_) bytes += rdd->MigratePartitions(moves);
    std::size_t keep = 0;
    for (auto& weak : shuffles_) {
      auto state = weak.lock();
      if (!state) continue;
      bytes += state->MigratePartitions(moves);
      shuffles_[keep++] = std::move(weak);
    }
    shuffles_.resize(keep);
    return bytes;
  }

  /// Replays lost map outputs of one shuffle before its preserved buckets
  /// are read again. Pure map sides re-execute (a recovery stage charging
  /// the recorded task costs, re-spilling to the replacement executors);
  /// map sides that read the shared-storage side channel are NOT replayable
  /// — the side channel lives outside the lineage, so the engine cannot
  /// guarantee a replay reproduces the original output (§3's impurity) —
  /// and the job aborts with DATA_LOSS, routing impure solvers to their
  /// checkpoint-restart path.
  void RecoverLostMapOutputs(ShuffleMapState& state) {
    // Loop: a further failure can fire at the replay stage's own boundary
    // and destroy more outputs; plans are finite, so this terminates.
    while (state.any_lost()) RecoverLostMapOutputsOnce(state);
  }

  void RecoverLostMapOutputsOnce(ShuffleMapState& state) {
    if (state.map_side_impure()) {
      throw SparkletAbort(DataLossError(
          "executor loss destroyed map outputs of shuffle '" +
          state.op_name() +
          "', whose map tasks read shared persistent storage outside the "
          "RDD lineage; replay cannot be guaranteed to reproduce them — "
          "restart from the last checkpoint"));
    }
    const ShuffleMapState::ReplayPlan plan = state.TakeReplayPlan();
    const std::string stage_name =
        state.op_name() + "-map#r" +
        std::to_string(state.retry_attempts() + 1);
    // The replayed map tasks re-write their spill (and re-shuffle it to the
    // waiting reduce side) on the replacement executors. The spill charge
    // precedes the stage boundary — writes happen *during* the stage — so a
    // loss firing at that boundary correctly wipes it again (and bumps the
    // plan's loss epochs, keeping those partitions lost for the next replay
    // round instead of being wrongly marked recovered below).
    Status status = cluster_.ChargeShuffle(state.ReplaySpillBytes(plan.indices));
    if (!status.ok()) throw SparkletAbort(status);
    cluster_.RunStage(state.ReplayTaskCosts(plan.indices), stage_name,
                      StageKind::kRecovery);
    cluster_.mutable_metrics().recomputed_tasks += plan.indices.size();
    state.MarkRecovered(plan);
  }

 private:
  VirtualCluster cluster_;
  linalg::CostModel cost_model_;
  SharedStorage shared_storage_;
  FaultInjector fault_injector_;
  int next_rdd_id_ = 0;
  std::vector<RddBase*> live_rdds_;
  std::vector<std::weak_ptr<ShuffleMapState>> shuffles_;
};

// ---------------------------------------------------------------------------
// Rdd member implementations
// ---------------------------------------------------------------------------

namespace internal {

inline std::vector<std::shared_ptr<RddBase>> CollectBoundaries(
    const std::vector<std::shared_ptr<RddBase>>& parents) {
  std::vector<std::shared_ptr<RddBase>> out;
  for (const auto& p : parents) {
    if (p->IsBoundary()) out.push_back(p);
    // Non-boundary parents fold their own boundaries in at construction
    // time; see the Rdd constructor.
  }
  return out;
}

}  // namespace internal

template <typename T>
Rdd<T>::Rdd(SparkletContext* ctx, std::string name, int num_partitions,
            ComputeFn compute, std::vector<std::shared_ptr<RddBase>> parents,
            bool cache)
    : ctx_(ctx),
      name_(std::move(name)),
      id_(ctx->NextRddId()),
      num_partitions_(num_partitions),
      compute_(std::move(compute)),
      parents_(std::move(parents)),
      cache_(cache),
      store_(static_cast<std::size_t>(num_partitions)),
      store_bytes_(static_cast<std::size_t>(num_partitions), 0),
      store_node_(static_cast<std::size_t>(num_partitions), -1),
      lost_by_failure_(static_cast<std::size_t>(num_partitions), false) {
  boundary_deps_ = internal::CollectBoundaries(parents_);
  ctx_->RegisterRdd(this);
}

template <typename T>
Rdd<T>::~Rdd() {
  ReleaseAllCached();
  ctx_->UnregisterRdd(this);
}

template <typename T>
void Rdd<T>::ChargeCached(int partition) {
  const auto p = static_cast<std::size_t>(partition);
  if (!store_[p] || store_bytes_[p] != 0) return;
  std::uint64_t bytes = 0;
  for (const T& record : *store_[p]) bytes += SerializedSizeOf(record);
  store_bytes_[p] = bytes;
  // Record the owner the charge lands on: the release below must hit the
  // same ledger even if a membership rebalance re-homes the slot meanwhile.
  store_node_[p] = ctx_->cluster().NodeOfPartition(partition);
  ctx_->cluster().accountant().ChargeNode(store_node_[p], bytes);
}

template <typename T>
void Rdd<T>::ReleaseCached(int partition) {
  const auto p = static_cast<std::size_t>(partition);
  if (store_bytes_[p] == 0) return;
  ctx_->cluster().accountant().ReleaseNode(store_node_[p], store_bytes_[p]);
  store_bytes_[p] = 0;
  store_node_[p] = -1;
}

template <typename T>
void Rdd<T>::ReleaseAllCached() {
  for (int p = 0; p < num_partitions_; ++p) {
    if (static_cast<std::size_t>(p) < store_bytes_.size()) ReleaseCached(p);
  }
}

template <typename T>
std::size_t Rdd<T>::MaterializedRecordCount() const noexcept {
  std::size_t count = 0;
  for (const auto& p : store_) {
    if (p) count += p->size();
  }
  return count;
}

template <typename T>
typename Rdd<T>::Partition Rdd<T>::RunTaskWithRetries(int partition,
                                                      TaskContext& tc) {
  int failures = 0;
  for (;;) {
    if (ctx_->fault_injector().ShouldFail(name_, partition)) {
      auto& metrics = ctx_->cluster().mutable_metrics();
      metrics.task_failures += 1;
      ++failures;
      if (failures >= ctx_->config().max_task_failures) {
        throw SparkletAbort(AbortedError(
            "task for RDD '" + name_ + "' partition " +
            std::to_string(partition) + " exceeded max failures"));
      }
      metrics.task_retries += 1;
      continue;  // lineage recomputation: simply run the task again
    }
    return compute_(partition, tc);
  }
}

template <typename T>
void Rdd<T>::RunStageAndCache() {
  TaskContext tc = ctx_->MakeTaskContext();
  tc.SetStageConcurrency(
      std::min(num_partitions_, ctx_->config().concurrent_task_slots()));
  // An executor loss can fire at a (possibly nested) stage boundary while
  // this loop runs, dropping partitions this very pass already cached; the
  // outer loop re-runs until the store is complete.
  for (int attempt = 0;; ++attempt) {
    std::vector<double> costs;
    costs.reserve(static_cast<std::size_t>(num_partitions_));
    std::uint64_t recomputed = 0;
    for (int p = 0; p < num_partitions_; ++p) {
      if (store_[static_cast<std::size_t>(p)]) {
        costs.push_back(0.0);  // partition survived (or predates the loss)
        continue;
      }
      const bool was_lost = lost_by_failure_[static_cast<std::size_t>(p)];
      tc.ResetForTask();
      store_[static_cast<std::size_t>(p)] = RunTaskWithRetries(p, tc);
      if (was_lost && tc.shared_read_bytes() > 0) {
        // Replaying a task that reads the shared-storage side channel is
        // not sound: the channel lives outside the RDD lineage, so the
        // engine cannot guarantee the replay sees the bytes the original
        // task saw (the paper's §3 impurity). Route the solver to its
        // checkpoint-restart path instead.
        throw SparkletAbort(DataLossError(
            "executor loss destroyed cached partition " + std::to_string(p) +
            " of RDD '" + name_ +
            "', whose tasks read shared persistent storage outside the RDD "
            "lineage; replay cannot be guaranteed to reproduce it — restart "
            "from the last checkpoint"));
      }
      costs.push_back(tc.task_seconds());
      if (was_lost) {
        lost_by_failure_[static_cast<std::size_t>(p)] = false;
        ++recomputed;
      }
      ChargeCached(p);
    }
    // Re-runs get a distinct stage key so stage metrics and the
    // accountant's per-stage peak windows never collide with the original.
    std::string stage_name = name_;
    if (run_attempts_ > 0) stage_name += "#r" + std::to_string(run_attempts_);
    ++run_attempts_;
    ctx_->cluster().RunStage(costs, stage_name,
                             recomputed > 0 ? StageKind::kRecovery
                                            : StageKind::kNormal);
    ctx_->cluster().mutable_metrics().recomputed_tasks += recomputed;
    bool complete = true;
    for (const auto& slot : store_) {
      if (!slot) {
        complete = false;
        break;
      }
    }
    if (complete) return;
    if (attempt >= ctx_->config().max_task_failures) {
      throw SparkletAbort(AbortedError(
          "stage for RDD '" + name_ +
          "' could not complete: repeated executor losses exceeded the "
          "retry budget"));
    }
  }
}

template <typename T>
void Rdd<T>::EnsureMaterialized() {
  if (materialized_ || !cache_) {
    if (!cache_) {
      // Not a boundary: materialize our own boundaries so fused compute
      // can run (useful when called directly on a narrow RDD).
      for (const auto& dep : boundary_deps_) dep->EnsureMaterialized();
    }
    return;
  }
  for (const auto& dep : boundary_deps_) dep->EnsureMaterialized();
  RunStageAndCache();
  materialized_ = true;
}

template <typename T>
typename Rdd<T>::Partition Rdd<T>::ComputeOrRead(int partition,
                                                 TaskContext& tc) {
  if (cache_) {
    EnsureMaterialized();
    return *store_[static_cast<std::size_t>(partition)];
  }
  return RunTaskWithRetries(partition, tc);
}

template <typename T>
template <typename F>
auto Rdd<T>::Map(std::string op_name, F fn)
    -> RddPtr<std::invoke_result_t<F, const T&, TaskContext&>> {
  using U = std::invoke_result_t<F, const T&, TaskContext&>;
  auto self = this->shared_from_this();
  typename Rdd<U>::ComputeFn compute =
      [self, fn](int p, TaskContext& tc) -> std::vector<U> {
    Partition input = self->ComputeOrRead(p, tc);
    std::vector<U> out;
    out.reserve(input.size());
    for (const T& record : input) out.push_back(fn(record, tc));
    return out;
  };
  std::vector<std::shared_ptr<RddBase>> parents{self};
  auto inherited = self->cache_ ? std::vector<std::shared_ptr<RddBase>>{}
                                : self->boundary_deps_;
  auto rdd = std::make_shared<Rdd<U>>(ctx_, std::move(op_name),
                                      num_partitions_, std::move(compute),
                                      std::move(parents), /*cache=*/false);
  rdd->boundary_deps_ = self->cache_
                            ? std::vector<std::shared_ptr<RddBase>>{self}
                            : inherited;
  return rdd;
}

template <typename T>
template <typename Pred>
RddPtr<T> Rdd<T>::Filter(std::string op_name, Pred pred) {
  auto self = this->shared_from_this();
  ComputeFn compute = [self, pred](int p, TaskContext& tc) -> Partition {
    Partition input = self->ComputeOrRead(p, tc);
    Partition out;
    for (T& record : input) {
      if (pred(static_cast<const T&>(record))) out.push_back(std::move(record));
    }
    return out;
  };
  auto rdd = std::make_shared<Rdd<T>>(
      ctx_, std::move(op_name), num_partitions_, std::move(compute),
      std::vector<std::shared_ptr<RddBase>>{self}, /*cache=*/false);
  rdd->boundary_deps_ = self->cache_
                            ? std::vector<std::shared_ptr<RddBase>>{self}
                            : self->boundary_deps_;
  return rdd;
}

template <typename T>
template <typename U, typename F>
RddPtr<U> Rdd<T>::FlatMap(std::string op_name, F fn) {
  auto self = this->shared_from_this();
  typename Rdd<U>::ComputeFn compute =
      [self, fn](int p, TaskContext& tc) -> std::vector<U> {
    Partition input = self->ComputeOrRead(p, tc);
    std::vector<U> out;
    for (const T& record : input) fn(record, tc, out);
    return out;
  };
  auto rdd = std::make_shared<Rdd<U>>(
      ctx_, std::move(op_name), num_partitions_, std::move(compute),
      std::vector<std::shared_ptr<RddBase>>{self}, /*cache=*/false);
  rdd->boundary_deps_ = self->cache_
                            ? std::vector<std::shared_ptr<RddBase>>{self}
                            : self->boundary_deps_;
  return rdd;
}

template <typename T>
template <typename U, typename F>
RddPtr<U> Rdd<T>::MapPartitions(std::string op_name, F fn) {
  auto self = this->shared_from_this();
  typename Rdd<U>::ComputeFn compute =
      [self, fn](int p, TaskContext& tc) -> std::vector<U> {
    return fn(self->ComputeOrRead(p, tc), tc);
  };
  auto rdd = std::make_shared<Rdd<U>>(
      ctx_, std::move(op_name), num_partitions_, std::move(compute),
      std::vector<std::shared_ptr<RddBase>>{self}, /*cache=*/false);
  rdd->boundary_deps_ = self->cache_
                            ? std::vector<std::shared_ptr<RddBase>>{self}
                            : self->boundary_deps_;
  return rdd;
}

template <typename T>
RddPtr<T> Rdd<T>::Persist() {
  cache_ = true;
  if (store_.empty() && num_partitions_ > 0) {
    store_.resize(static_cast<std::size_t>(num_partitions_));
    store_bytes_.resize(static_cast<std::size_t>(num_partitions_), 0);
    store_node_.resize(static_cast<std::size_t>(num_partitions_), -1);
    lost_by_failure_.resize(static_cast<std::size_t>(num_partitions_), false);
  }
  return this->shared_from_this();
}

template <typename T>
void Rdd<T>::Unpersist() {
  ReleaseAllCached();
  for (auto& p : store_) p.reset();
  materialized_ = false;
}

template <typename T>
void Rdd<T>::DropPartition(int partition) {
  const auto p = static_cast<std::size_t>(partition);
  if (store_[p]) lost_by_failure_[p] = true;
  ReleaseCached(partition);
  store_[p].reset();
  materialized_ = false;
}

template <typename T>
int Rdd<T>::DropNodePartitions(int node) {
  if (!cache_) return 0;
  int dropped = 0;
  for (int p = 0; p < num_partitions_; ++p) {
    const auto idx = static_cast<std::size_t>(p);
    if (idx >= store_.size() || !store_[idx]) continue;
    // Match against the *recorded* host: the placement map has already
    // rebalanced the dead node's slots to survivors by the time this runs,
    // so recomputing placement here would miss everything the node held.
    if (store_node_[idx] != node) continue;
    lost_by_failure_[idx] = true;
    ReleaseCached(p);
    store_[idx].reset();
    materialized_ = false;
    ++dropped;
  }
  return dropped;
}

template <typename T>
std::uint64_t Rdd<T>::MigratePartitions(
    const std::vector<BlockManager::Move>& moves) {
  if (!cache_) return 0;
  std::uint64_t moved = 0;
  for (const auto& move : moves) {
    if (move.partition < 0 ||
        move.partition >= static_cast<std::int64_t>(store_.size())) {
      continue;
    }
    const auto idx = static_cast<std::size_t>(move.partition);
    if (!store_[idx] || store_bytes_[idx] == 0 ||
        store_node_[idx] != move.from) {
      continue;
    }
    const std::uint64_t bytes = store_bytes_[idx];
    ctx_->cluster().accountant().ReleaseNode(move.from, bytes);
    ctx_->cluster().accountant().ChargeNode(move.to, bytes);
    store_node_[idx] = move.to;
    moved += bytes;
  }
  return moved;
}

template <typename T>
typename Rdd<T>::Partition Rdd<T>::Collect() {
  for (const auto& dep : boundary_deps_) dep->EnsureMaterialized();
  if (cache_) EnsureMaterialized();

  Partition all;
  std::vector<double> costs;
  costs.reserve(static_cast<std::size_t>(num_partitions_));
  std::uint64_t bytes = 0;
  TaskContext tc = ctx_->MakeTaskContext();
  tc.SetStageConcurrency(
      std::min(num_partitions_, ctx_->config().concurrent_task_slots()));
  for (int p = 0; p < num_partitions_; ++p) {
    tc.ResetForTask();
    Partition part = ComputeOrRead(p, tc);
    costs.push_back(tc.task_seconds());
    for (T& record : part) {
      bytes += SerializedSizeOf(record);
      all.push_back(std::move(record));
    }
  }
  ctx_->cluster().RunStage(costs, name_ + "-collect");
  ctx_->cluster().ChargeCollect(bytes, num_partitions_);
  // Driver deserializes the whole result single-threaded (pySpark pickle).
  const double deser =
      static_cast<double>(bytes) * ctx_->config().serde_seconds_per_byte;
  ctx_->cluster().mutable_metrics().collect_seconds += deser;
  return all;
}

template <typename T>
std::int64_t Rdd<T>::Count() {
  for (const auto& dep : boundary_deps_) dep->EnsureMaterialized();
  if (cache_) EnsureMaterialized();
  std::int64_t count = 0;
  std::vector<double> costs;
  TaskContext tc = ctx_->MakeTaskContext();
  for (int p = 0; p < num_partitions_; ++p) {
    tc.ResetForTask();
    count += static_cast<std::int64_t>(ComputeOrRead(p, tc).size());
    costs.push_back(tc.task_seconds());
  }
  ctx_->cluster().RunStage(costs, name_ + "-count");
  ctx_->cluster().ChargeCollect(8ULL * static_cast<std::uint64_t>(
                                           num_partitions_),
                                num_partitions_);
  return count;
}

// ---------------------------------------------------------------------------
// Context templates
// ---------------------------------------------------------------------------

template <typename T>
RddPtr<T> SparkletContext::Parallelize(std::string name, std::vector<T> data,
                                       int num_partitions) {
  if (num_partitions <= 0) num_partitions = 1;
  // The source data is kept alive by the compute closure (Spark can always
  // re-read stable input), so lost partitions are recomputable.
  auto source = std::make_shared<const std::vector<T>>(std::move(data));
  const int parts = num_partitions;
  typename Rdd<T>::ComputeFn compute =
      [source, parts](int p, TaskContext&) -> std::vector<T> {
    const std::size_t n = source->size();
    const std::size_t lo = n * static_cast<std::size_t>(p) /
                           static_cast<std::size_t>(parts);
    const std::size_t hi = n * (static_cast<std::size_t>(p) + 1) /
                           static_cast<std::size_t>(parts);
    return std::vector<T>(source->begin() + static_cast<std::ptrdiff_t>(lo),
                          source->begin() + static_cast<std::ptrdiff_t>(hi));
  };
  auto rdd = std::make_shared<Rdd<T>>(this, std::move(name), num_partitions,
                                      std::move(compute),
                                      std::vector<std::shared_ptr<RddBase>>{},
                                      /*cache=*/true);
  rdd->EnsureMaterialized();
  return rdd;
}

template <typename K, typename V>
RddPtr<std::pair<K, V>> SparkletContext::ParallelizePartitioned(
    std::string name, const std::vector<std::pair<K, V>>& data,
    PartitionerPtr<K> partitioner) {
  const int parts = partitioner->num_partitions();
  // Bucket once up front (O(records)); the compute closure indexes into the
  // shared buckets so lost partitions recompute in O(1).
  auto buckets =
      std::make_shared<std::vector<std::vector<std::pair<K, V>>>>(
          static_cast<std::size_t>(parts));
  for (const auto& record : data) {
    (*buckets)[static_cast<std::size_t>(
                   partitioner->PartitionOf(record.first))]
        .push_back(record);
  }
  typename Rdd<std::pair<K, V>>::ComputeFn compute =
      [buckets](int p, TaskContext&) {
        return (*buckets)[static_cast<std::size_t>(p)];
      };
  auto rdd = std::make_shared<Rdd<std::pair<K, V>>>(
      this, std::move(name), parts, std::move(compute),
      std::vector<std::shared_ptr<RddBase>>{}, /*cache=*/true);
  rdd->EnsureMaterialized();
  return rdd;
}

template <typename T>
RddPtr<T> SparkletContext::Union(std::string name,
                                 std::vector<RddPtr<T>> rdds) {
  int total_parts = 0;
  std::vector<std::shared_ptr<RddBase>> parents;
  for (const auto& r : rdds) {
    total_parts += r->num_partitions();
    parents.push_back(r);
  }
  auto sources = rdds;  // captured by the routing closure
  typename Rdd<T>::ComputeFn compute =
      [sources](int p, TaskContext& tc) -> std::vector<T> {
    int offset = p;
    for (const auto& src : sources) {
      if (offset < src->num_partitions()) return src->ComputeOrRead(offset, tc);
      offset -= src->num_partitions();
    }
    throw std::out_of_range("union: partition index out of range");
  };
  auto rdd = std::make_shared<Rdd<T>>(this, std::move(name), total_parts,
                                      std::move(compute), std::move(parents),
                                      /*cache=*/false);
  // Boundary deps: each cached source, or the sources' own boundaries.
  std::vector<std::shared_ptr<RddBase>> bounds;
  for (const auto& r : rdds) {
    if (r->IsBoundary()) {
      bounds.push_back(r);
    } else {
      for (const auto& b : r->parents()) {
        if (b->IsBoundary()) bounds.push_back(b);
      }
    }
  }
  rdd->boundary_deps_ = std::move(bounds);
  return rdd;
}

// ---------------------------------------------------------------------------
// Wide (shuffle) transformations — free functions over pair RDDs
// ---------------------------------------------------------------------------

namespace internal {

/// The preserved map output of one shuffle: per-reduce-partition record
/// buckets, shared and immutable once written — exactly Spark's preserved
/// shuffle files. Reduce tasks (and recomputations after a lost partition)
/// read *through* the shared ref; nothing re-copies the records.
template <typename K, typename C>
using ShuffleFiles =
    std::shared_ptr<const std::vector<std::vector<std::pair<K, C>>>>;

/// A shuffle's preserved output: the record buckets plus the replay
/// bookkeeping an executor loss needs (per-map-partition costs, placement,
/// lost flags — see ShuffleMapState).
template <typename K, typename C>
struct ShuffleOutput {
  ShuffleFiles<K, C> files;
  std::shared_ptr<ShuffleMapState> map_state;
};

/// Runs the map side of a shuffle: computes every parent partition (fusing
/// its narrow chain), partitions records into buckets, optionally performs
/// map-side combine, charges spill + wire, and returns the preserved
/// per-reduce buckets as one shared immutable object plus the map-output
/// replay state registered with the context.
///
/// CombineInit:  (V&&) -> C                        combiner from first value
/// CombineMerge: (C&, V&&, TaskContext&) -> void   fold a value in
template <typename K, typename V, typename C, typename CombineInit,
          typename CombineMerge>
ShuffleOutput<K, C> ShuffleMapSide(Rdd<std::pair<K, V>>& parent,
                                   const Partitioner<K>& partitioner,
                                   const std::string& op_name,
                                   bool map_side_combine, CombineInit init,
                                   CombineMerge merge) {
  SparkletContext* ctx = parent.ctx();
  const int reducers = partitioner.num_partitions();
  std::vector<std::vector<std::pair<K, C>>> buckets(
      static_cast<std::size_t>(reducers));
  std::vector<double> costs;
  std::vector<std::uint64_t> spill_bytes(
      static_cast<std::size_t>(parent.num_partitions()), 0);
  bool map_side_impure = false;
  TaskContext tc = ctx->MakeTaskContext();
  tc.SetStageConcurrency(
      std::min(parent.num_partitions(), ctx->config().concurrent_task_slots()));
  for (int p = 0; p < parent.num_partitions(); ++p) {
    tc.ResetForTask();
    std::vector<std::pair<K, V>> records = parent.ComputeOrRead(p, tc);
    // Side-channel reads make the map side non-replayable (see
    // SparkletContext::RecoverLostMapOutputs). Detect them here so the
    // replay state can refuse later.
    if (tc.shared_read_bytes() > 0) map_side_impure = true;
    // Map-side combine into a per-task table (Spark's ExternalAppendOnlyMap).
    std::unordered_map<K, C> combined;
    std::vector<std::pair<K, C>> passthrough;
    for (auto& [key, value] : records) {
      if (map_side_combine) {
        auto it = combined.find(key);
        if (it == combined.end()) {
          combined.emplace(key, init(std::move(value)));
        } else {
          merge(it->second, std::move(value), tc);
        }
      } else {
        passthrough.emplace_back(key, init(std::move(value)));
      }
    }
    std::uint64_t bytes = 0;
    auto emit = [&](std::pair<K, C>&& rec) {
      bytes += SerializedSizeOf(rec);
      const int r = partitioner.PartitionOf(rec.first);
      buckets[static_cast<std::size_t>(r)].push_back(std::move(rec));
    };
    for (auto& rec : passthrough) emit(std::move(rec));
    for (auto& [key, comb] : combined) {
      emit(std::make_pair(key, std::move(comb)));
    }
    spill_bytes[static_cast<std::size_t>(p)] = bytes;
    // The task pays for serializing its map output and writing the
    // compressed spill to the node-local SSD.
    costs.push_back(
        tc.task_seconds() +
        static_cast<double>(bytes) * ctx->config().serde_seconds_per_byte +
        static_cast<double>(bytes) * ctx->config().shuffle_compression /
            ctx->config().local_storage_bandwidth_bytes_per_sec);
  }
  // Preserve the output and register the replay state BEFORE the map
  // stage's boundary runs: a node loss firing at exactly that boundary must
  // see the just-written outputs (the tasks wrote their spill during the
  // stage) and mark its share lost. Clock-wise the order is immaterial —
  // stage time and shuffle charges add commutatively.
  ShuffleOutput<K, C> out;
  out.files =
      std::make_shared<const std::vector<std::vector<std::pair<K, C>>>>(
          std::move(buckets));
  out.map_state = std::make_shared<ShuffleMapState>(
      op_name, costs, std::move(spill_bytes), map_side_impure,
      &ctx->cluster(), &ctx->cluster().accountant());
  ctx->RegisterShuffle(out.map_state);
  Status status =
      ctx->cluster().ChargeShuffle(out.map_state->spill_bytes());
  if (!status.ok()) throw SparkletAbort(status);
  ctx->cluster().RunStage(costs, op_name + "-map");
  return out;
}

}  // namespace internal

/// combineByKey: the general shuffle (paper's ListAppend combiner pattern).
///   init:        (V&&) -> C
///   merge_value: (C&, V&&, TaskContext&) -> void
///   merge_comb:  (C&, C&&, TaskContext&) -> void
template <typename K, typename V, typename C, typename Init,
          typename MergeValue, typename MergeComb>
RddPtr<std::pair<K, C>> CombineByKey(RddPtr<std::pair<K, V>> parent,
                                     PartitionerPtr<K> partitioner,
                                     std::string op_name, Init init,
                                     MergeValue merge_value,
                                     MergeComb merge_comb) {
  SparkletContext* ctx = parent->ctx();
  auto rdd = std::make_shared<Rdd<std::pair<K, C>>>(
      ctx, op_name, partitioner->num_partitions(),
      typename Rdd<std::pair<K, C>>::ComputeFn{},
      std::vector<std::shared_ptr<RddBase>>{parent}, /*cache=*/true);
  // The shuffle runs lazily on first materialization: the compute function
  // installed here performs map side + reduce side in one go, caching all
  // partitions through the store (EnsureMaterialized drives it).
  auto state = std::make_shared<internal::ShuffleOutput<K, C>>();
  rdd->SetComputeForShuffle(
      [parent, partitioner, op_name, init, merge_value, merge_comb, state,
       ctx](int p, TaskContext& tc) -> std::vector<std::pair<K, C>> {
        if (state->files == nullptr) {
          *state = internal::ShuffleMapSide<K, V, C>(
              *parent, *partitioner, op_name, /*map_side_combine=*/true, init,
              merge_value);
        }
        // An executor loss may have destroyed part of the preserved map
        // output; replay it (or abort, if the map side is impure) before
        // reading the bucket.
        ctx->RecoverLostMapOutputs(*state->map_state);
        // Reduce side for partition p: read the preserved bucket through the
        // shared ref and merge combiners. Records hold refs, so the combiner
        // seeds below share payloads with the shuffle files — the "copy" is
        // a ref-count bump, never block data (the files stay pristine for
        // recomputation either way).
        const auto& bucket = (*state->files)[static_cast<std::size_t>(p)];
        std::uint64_t fetch_bytes = 0;
        std::unordered_map<K, C> table;
        for (const auto& rec : bucket) {
          fetch_bytes += SerializedSizeOf(rec);
          auto it = table.find(rec.first);
          if (it == table.end()) {
            table.emplace(rec.first, rec.second);
          } else {
            C seed = rec.second;
            merge_comb(it->second, std::move(seed), tc);
          }
        }
        tc.ChargeCompute(static_cast<double>(fetch_bytes) *
                             ctx->config().serde_seconds_per_byte +
                         static_cast<double>(fetch_bytes) *
                             ctx->config().shuffle_compression /
                             ctx->config().local_storage_bandwidth_bytes_per_sec);
        std::vector<std::pair<K, C>> out;
        out.reserve(table.size());
        for (auto& [key, comb] : table) {
          out.emplace_back(key, std::move(comb));
        }
        return out;
      });
  return rdd;
}

/// reduceByKey(fn): combineByKey with C == V.
///   fn: (const V&, const V&, TaskContext&) -> V.
template <typename K, typename V, typename Fn>
RddPtr<std::pair<K, V>> ReduceByKey(RddPtr<std::pair<K, V>> parent,
                                    PartitionerPtr<K> partitioner,
                                    std::string op_name, Fn fn) {
  return CombineByKey<K, V, V>(
      parent, partitioner, std::move(op_name),
      [](V&& v) { return std::move(v); },
      [fn](V& acc, V&& v, TaskContext& tc) { acc = fn(acc, v, tc); },
      [fn](V& acc, V&& v, TaskContext& tc) { acc = fn(acc, v, tc); });
}

/// partitionBy: repartitions records without combining (records with equal
/// keys stay distinct).
template <typename K, typename V>
RddPtr<std::pair<K, V>> PartitionBy(RddPtr<std::pair<K, V>> parent,
                                    PartitionerPtr<K> partitioner,
                                    std::string op_name = "partitionBy") {
  SparkletContext* ctx = parent->ctx();
  // Shuffle without combine: every record is emitted to its target bucket.
  auto out = std::make_shared<Rdd<std::pair<K, V>>>(
      ctx, op_name, partitioner->num_partitions(),
      typename Rdd<std::pair<K, V>>::ComputeFn{},
      std::vector<std::shared_ptr<RddBase>>{parent}, /*cache=*/true);
  auto state = std::make_shared<internal::ShuffleOutput<K, V>>();
  out->SetComputeForShuffle(
      [parent, partitioner, op_name, state, ctx](int p, TaskContext& tc)
          -> std::vector<std::pair<K, V>> {
        if (state->files == nullptr) {
          *state = internal::ShuffleMapSide<K, V, V>(
              *parent, *partitioner, op_name, /*map_side_combine=*/false,
              [](V&& v) { return std::move(v); },
              [](V&, V&&, TaskContext&) {});
        }
        // Replay any map outputs an executor loss destroyed (aborting with
        // DATA_LOSS when the map side is impure) before touching the files.
        ctx->RecoverLostMapOutputs(*state->map_state);
        // The reduce output shares the preserved bucket's records (ref-count
        // bumps, not payload copies); the files stay intact so a lost reduce
        // partition can be recomputed from them.
        const auto& bucket = (*state->files)[static_cast<std::size_t>(p)];
        std::uint64_t fetch_bytes = 0;
        for (const auto& rec : bucket) fetch_bytes += SerializedSizeOf(rec);
        tc.ChargeCompute(static_cast<double>(fetch_bytes) *
                             ctx->config().serde_seconds_per_byte +
                         static_cast<double>(fetch_bytes) *
                             ctx->config().shuffle_compression /
                             ctx->config().local_storage_bandwidth_bytes_per_sec);
        return bucket;
      });
  return out;
}

}  // namespace apspark::sparklet
