#include "sparklet/block_manager.h"

#include <algorithm>

#include "sparklet/check.h"

namespace apspark::sparklet {

BlockManager::BlockManager(int nodes, int racks)
    : racks_(std::max(1, std::min(racks, std::max(1, nodes)))),
      live_(std::max(1, nodes)),
      alive_(static_cast<std::size_t>(live_), true),
      rack_(static_cast<std::size_t>(live_), 0),
      owned_(static_cast<std::size_t>(live_), 0) {
  // Contiguous balanced rack blocks: node i of N over R racks sits in rack
  // floor(i * R / N) — the usual "adjacent hosts share a switch" topology.
  for (int i = 0; i < live_; ++i) {
    rack_[static_cast<std::size_t>(i)] =
        static_cast<int>(static_cast<std::int64_t>(i) * racks_ / live_);
  }
}

int BlockManager::rack_of(int node) const {
  SPARKLET_CHECK(node >= 0 && node < num_nodes(),
                 "rack_of: unknown node id " + std::to_string(node));
  return rack_[static_cast<std::size_t>(node)];
}

std::vector<int> BlockManager::LiveNodesInRack(int rack) const {
  std::vector<int> out;
  for (int n = 0; n < num_nodes(); ++n) {
    if (alive_[static_cast<std::size_t>(n)] &&
        rack_[static_cast<std::size_t>(n)] == rack) {
      out.push_back(n);
    }
  }
  return out;
}

int BlockManager::LeastLoadedLive() const {
  int best = -1;
  for (int n = 0; n < num_nodes(); ++n) {
    if (!alive_[static_cast<std::size_t>(n)]) continue;
    if (best < 0 ||
        owned_[static_cast<std::size_t>(n)] < owned_[static_cast<std::size_t>(best)]) {
      best = n;
    }
  }
  SPARKLET_CHECK(best >= 0, "placement has no live node");
  return best;
}

void BlockManager::EnsureSlot(std::int64_t partition) const {
  // Least-loaded with lowest-id tie-break hands fresh slots out round-robin
  // on an unchanged cluster — bitwise-identical to the old `p % nodes`.
  while (static_cast<std::int64_t>(placement_.size()) <= partition) {
    const int owner = LeastLoadedLive();
    placement_.push_back(owner);
    ++owned_[static_cast<std::size_t>(owner)];
  }
}

int BlockManager::NodeOf(std::int64_t partition) const {
  SPARKLET_CHECK(partition >= 0, "negative partition id " +
                                     std::to_string(partition) +
                                     " has no placement");
  EnsureSlot(partition);
  return placement_[static_cast<std::size_t>(partition)];
}

std::vector<BlockManager::Move> BlockManager::RemoveNode(int node) {
  SPARKLET_CHECK(alive(node), "RemoveNode: node " + std::to_string(node) +
                                  " is not a live node");
  SPARKLET_CHECK(live_ > 1, "RemoveNode would kill the last live node");
  alive_[static_cast<std::size_t>(node)] = false;
  --live_;
  owned_[static_cast<std::size_t>(node)] = 0;
  std::vector<Move> moves;
  for (std::size_t p = 0; p < placement_.size(); ++p) {
    if (placement_[p] != node) continue;
    const int to = LeastLoadedLive();
    placement_[p] = to;
    ++owned_[static_cast<std::size_t>(to)];
    moves.push_back({static_cast<std::int64_t>(p), node, to});
  }
  return moves;
}

BlockManager::JoinResult BlockManager::AddNode() {
  JoinResult result;
  result.node = num_nodes();
  // Join the least-populated rack (ties to the lowest rack id): replacement
  // capacity fills the hole a rack loss left before growing dense racks.
  int best_rack = 0;
  int best_count = -1;
  for (int r = 0; r < racks_; ++r) {
    int count = 0;
    for (int n = 0; n < num_nodes(); ++n) {
      if (alive_[static_cast<std::size_t>(n)] &&
          rack_[static_cast<std::size_t>(n)] == r) {
        ++count;
      }
    }
    if (best_count < 0 || count < best_count) {
      best_rack = r;
      best_count = count;
    }
  }
  alive_.push_back(true);
  rack_.push_back(best_rack);
  owned_.push_back(0);
  ++live_;

  // Steal from the most-loaded live node (ties to the lowest id), always
  // its highest-numbered slot, until within one slot of the donor — the
  // deterministic greedy rebalance.
  for (;;) {
    int donor = -1;
    for (int n = 0; n < num_nodes(); ++n) {
      if (!alive_[static_cast<std::size_t>(n)] || n == result.node) continue;
      if (donor < 0 || owned_[static_cast<std::size_t>(n)] >
                           owned_[static_cast<std::size_t>(donor)]) {
        donor = n;
      }
    }
    if (donor < 0 || owned_[static_cast<std::size_t>(donor)] -
                             owned_[static_cast<std::size_t>(result.node)] <
                         2) {
      break;
    }
    std::int64_t slot = -1;
    for (std::size_t p = placement_.size(); p-- > 0;) {
      if (placement_[p] == donor) {
        slot = static_cast<std::int64_t>(p);
        break;
      }
    }
    SPARKLET_CHECK(slot >= 0, "owned-count/placement mismatch");
    placement_[static_cast<std::size_t>(slot)] = result.node;
    --owned_[static_cast<std::size_t>(donor)];
    ++owned_[static_cast<std::size_t>(result.node)];
    result.moves.push_back({slot, donor, result.node});
  }
  return result;
}

int BlockManager::OwnedSlots(int node) const {
  if (node < 0 || node >= num_nodes()) return 0;
  return owned_[static_cast<std::size_t>(node)];
}

}  // namespace apspark::sparklet
