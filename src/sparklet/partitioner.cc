#include "sparklet/partitioner.h"

namespace apspark::sparklet {

std::int64_t PortableHashInt(std::int64_t value) noexcept {
  // CPython 2: hash(n) == n for n != -1; hash(-1) == -2.
  return value == -1 ? -2 : value;
}

std::int64_t PortableHashTuple2(std::int64_t a, std::int64_t b) noexcept {
  // CPython 2 tuplehash with 64-bit longs, length 2 — exactly what
  // pyspark.rdd.portable_hash computes for an (I, J) key.
  using U = std::uint64_t;  // well-defined wrap-around arithmetic
  U x = 0x345678UL;
  U mult = 1000003UL;
  std::int64_t len = 2;

  --len;
  x = (x ^ static_cast<U>(PortableHashInt(a))) * mult;
  mult += static_cast<U>(82520L + len + len);

  --len;
  x = (x ^ static_cast<U>(PortableHashInt(b))) * mult;
  mult += static_cast<U>(82520L + len + len);

  x += 97531UL;
  auto result = static_cast<std::int64_t>(x);
  if (result == -1) result = -2;
  return result;
}

int NonNegativeMod(std::int64_t hash, int num_partitions) noexcept {
  if (num_partitions <= 0) return 0;
  const int raw = static_cast<int>(hash % num_partitions);
  return raw < 0 ? raw + num_partitions : raw;
}

}  // namespace apspark::sparklet
