#include "sparklet/fair_scheduler.h"

#include <algorithm>
#include <limits>

#include "obs/trace.h"

namespace apspark::sparklet {

namespace {

/// A stage's modelled duration on `slots` shared task slots: list-scheduled
/// makespan, the exposed driver overhead (dispatch overlaps compute, like
/// RunStage), and the slot-independent inter-stage serial time.
double StageDuration(const StageRecord& stage, int slots) {
  const double makespan = ListScheduleMakespan(stage.task_seconds, slots);
  const double exposed = stage.stage_overhead_seconds +
                         std::max(0.0, stage.launch_seconds - makespan);
  return makespan + exposed + stage.interstage_seconds;
}

}  // namespace

TenantReport FairScheduler::Run(const std::vector<TenantJob>& jobs,
                                SimMetrics* metrics) const {
  TenantReport report;
  const auto n = jobs.size();
  report.job_finish_seconds.assign(n, 0.0);
  report.job_admission_wait_seconds.assign(n, 0.0);
  report.job_min_slots.assign(n, 0);

  const int total_slots = config_.concurrent_task_slots();
  const std::uint64_t budget = config_.executor_memory_bytes;

  for (std::size_t j = 0; j < n; ++j) {
    for (const StageRecord& stage : jobs[j].stages) {
      report.serial_seconds += StageDuration(stage, total_slots);
    }
  }

  // Per-job replay cursor.
  std::vector<std::size_t> next(n, 0);
  std::vector<bool> running(n, false);
  std::vector<double> end(n, 0.0);
  std::vector<std::uint64_t> demand(n, 0);

  double now = 0;
  for (;;) {
    // Admission pass, in job order (deterministic): start every idle job
    // whose next stage fits under the shared memory budget alongside the
    // stages already running. If nothing runs and nothing fits, the first
    // starving job is force-admitted and its overflow spills to disk — a
    // lone tenant larger than the budget must degrade, not deadlock.
    std::uint64_t used = 0;
    int active = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (running[j]) {
        used += demand[j];
        ++active;
      }
    }
    std::vector<std::size_t> starters;
    for (std::size_t j = 0; j < n; ++j) {
      if (running[j] || next[j] >= jobs[j].stages.size()) continue;
      const std::uint64_t need = jobs[j].stages[next[j]].node_peak_bytes;
      if (used + need <= budget || (active == 0 && starters.empty())) {
        starters.push_back(j);
        used += need;
        ++active;
      }
    }
    if (active == 0) break;  // every job replayed every stage

    // Fair share: stages starting now split the slots with the already
    // running ones evenly; shares are fixed for the stage's lifetime.
    const int share = std::max(1, total_slots / active);
    for (const std::size_t j : starters) {
      const StageRecord& stage = jobs[j].stages[next[j]];
      std::uint64_t need = stage.node_peak_bytes;
      double spill_seconds = 0;
      if (need > budget) {
        const std::uint64_t overflow = need - budget;
        report.spilled_bytes += overflow;
        spill_seconds = static_cast<double>(overflow) /
                        config_.local_storage_bandwidth_bytes_per_sec;
        need = budget;
      }
      running[j] = true;
      demand[j] = need;
      end[j] = now + StageDuration(stage, share) + spill_seconds;
      if (obs::TraceEnabled()) {
        auto& tracer = obs::Tracer::Get();
        const std::int64_t lane =
            obs::kTenantLaneBase + static_cast<std::int64_t>(j);
        tracer.SetLaneName(
            lane, jobs[j].name.empty() ? "tenant " + std::to_string(j)
                                       : "tenant " + jobs[j].name);
        tracer.VirtualSpan(
            stage.name.empty() ? "stage" : stage.name.c_str(), lane, now,
            end[j],
            "\"tenant\":" + std::to_string(j) +
                ",\"share\":" + std::to_string(share) +
                ",\"stage\":" + std::to_string(next[j]));
      }
      report.job_min_slots[j] = report.job_min_slots[j] == 0
                                    ? share
                                    : std::min(report.job_min_slots[j], share);
    }

    // Advance to the earliest stage completion; jobs held at admission
    // accrue their wait across the jump.
    double horizon = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (running[j]) horizon = std::min(horizon, end[j]);
    }
    for (std::size_t j = 0; j < n; ++j) {
      if (!running[j] && next[j] < jobs[j].stages.size()) {
        report.job_admission_wait_seconds[j] += horizon - now;
        if (obs::TraceEnabled() && horizon > now) {
          obs::Tracer::Get().VirtualSpan(
              "admission-wait",
              obs::kTenantLaneBase + static_cast<std::int64_t>(j), now,
              horizon, "\"tenant\":" + std::to_string(j));
        }
      }
    }
    now = horizon;
    for (std::size_t j = 0; j < n; ++j) {
      if (!running[j] || end[j] > now) continue;
      running[j] = false;
      demand[j] = 0;
      ++next[j];
      if (next[j] >= jobs[j].stages.size()) report.job_finish_seconds[j] = now;
    }
  }

  report.makespan_seconds = now;
  for (const double w : report.job_admission_wait_seconds) {
    report.admission_wait_seconds += w;
  }
  if (metrics != nullptr) {
    metrics->admission_wait_seconds += report.admission_wait_seconds;
    metrics->spilled_bytes += report.spilled_bytes;
  }
  return report;
}

}  // namespace apspark::sparklet
