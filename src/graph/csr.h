// Compressed sparse row adjacency, the backing structure for the
// Dijkstra/Johnson ground-truth solvers.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace apspark::graph {

class Csr {
 public:
  struct Neighbor {
    VertexId to;
    double weight;
  };

  /// Builds CSR from a graph; undirected graphs get both arc directions.
  explicit Csr(const Graph& g);

  VertexId num_vertices() const noexcept { return num_vertices_; }
  std::size_t num_arcs() const noexcept { return neighbors_.size(); }

  std::span<const Neighbor> Neighbors(VertexId u) const noexcept {
    return {neighbors_.data() + offsets_[static_cast<std::size_t>(u)],
            neighbors_.data() + offsets_[static_cast<std::size_t>(u) + 1]};
  }

  /// Out-degree of u.
  std::size_t Degree(VertexId u) const noexcept {
    return offsets_[static_cast<std::size_t>(u) + 1] -
           offsets_[static_cast<std::size_t>(u)];
  }

 private:
  VertexId num_vertices_;
  std::vector<std::size_t> offsets_;
  std::vector<Neighbor> neighbors_;
};

}  // namespace apspark::graph
