// Weighted graph container.
//
// Vertices are dense integer indices [0, n) — the paper assumes "some initial
// pre-processing of the input graph has been performed, and each vertex is
// uniquely identified by an integer index" (§3). Undirected by default, with
// a directed mode matching the paper's note that the solvers adapt directly
// to digraphs by disregarding symmetry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "linalg/dense_block.h"

namespace apspark::graph {

using VertexId = std::int64_t;

struct Edge {
  VertexId u = 0;
  VertexId v = 0;
  double weight = 0.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

class Graph {
 public:
  explicit Graph(VertexId num_vertices, bool directed = false)
      : num_vertices_(num_vertices), directed_(directed) {}

  VertexId num_vertices() const noexcept { return num_vertices_; }
  std::size_t num_edges() const noexcept { return edges_.size(); }
  bool directed() const noexcept { return directed_; }
  const std::vector<Edge>& edges() const noexcept { return edges_; }

  /// Adds edge u->v (and implicitly v->u when undirected). Parallel edges are
  /// allowed; all consumers take the minimum weight.
  Status AddEdge(VertexId u, VertexId v, double weight);

  /// Dense adjacency matrix: 0 on the diagonal, edge weight where present,
  /// +inf elsewhere. Parallel edges collapse to the minimum weight.
  linalg::DenseBlock ToDenseAdjacency() const;

  /// Minimum / maximum edge weight (0 edges -> {0, 0}).
  double MinWeight() const noexcept;
  double MaxWeight() const noexcept;

  /// Short human-readable summary for logs.
  std::string Summary() const;

 private:
  VertexId num_vertices_;
  bool directed_;
  std::vector<Edge> edges_;
};

}  // namespace apspark::graph
