#include "graph/graph.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace apspark::graph {

Status Graph::AddEdge(VertexId u, VertexId v, double weight) {
  if (u < 0 || u >= num_vertices_ || v < 0 || v >= num_vertices_) {
    return InvalidArgumentError("edge endpoint out of range");
  }
  if (std::isnan(weight)) {
    return InvalidArgumentError("edge weight is NaN");
  }
  edges_.push_back({u, v, weight});
  return Status::Ok();
}

linalg::DenseBlock Graph::ToDenseAdjacency() const {
  linalg::DenseBlock a(num_vertices_, num_vertices_, linalg::kInf);
  for (VertexId i = 0; i < num_vertices_; ++i) a.Set(i, i, 0.0);
  for (const Edge& e : edges_) {
    if (e.weight < a.At(e.u, e.v)) {
      a.Set(e.u, e.v, e.weight);
      if (!directed_) a.Set(e.v, e.u, e.weight);
    }
  }
  return a;
}

double Graph::MinWeight() const noexcept {
  double w = edges_.empty() ? 0.0 : linalg::kInf;
  for (const Edge& e : edges_) w = std::min(w, e.weight);
  return w;
}

double Graph::MaxWeight() const noexcept {
  double w = 0.0;
  for (const Edge& e : edges_) w = std::max(w, e.weight);
  return w;
}

std::string Graph::Summary() const {
  std::ostringstream out;
  out << (directed_ ? "directed" : "undirected") << " graph, n="
      << num_vertices_ << ", m=" << edges_.size();
  return out.str();
}

}  // namespace apspark::graph
