#include "graph/generators.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <queue>

#include "common/rng.h"

namespace apspark::graph {

double PaperEdgeProbability(VertexId n, double eps) {
  if (n <= 1) return 0.0;
  const double nd = static_cast<double>(n);
  return std::min(1.0, (1.0 + eps) * std::log(nd) / nd);
}

Graph ErdosRenyi(VertexId n, double edge_probability, WeightRange weights,
                 std::uint64_t seed, bool directed) {
  Graph g(n, directed);
  if (n <= 1 || edge_probability <= 0.0) return g;
  Xoshiro256 rng(seed);
  // Geometric skipping over the linearized pair index space: the gap between
  // consecutive edges is Geometric(p), so expected work is O(m) not O(n^2).
  // Undirected: pairs (u, v) with u < v; directed: all ordered pairs u != v.
  const std::uint64_t total =
      directed ? static_cast<std::uint64_t>(n) * (n - 1)
               : static_cast<std::uint64_t>(n) * (n - 1) / 2;
  // Row r of the (strict) upper triangle starts at linear index
  // r*(n-1) - r*(r-1)/2 and holds n-1-r entries. Since the sampled indices
  // are strictly increasing, the row cursor advances monotonically and the
  // whole generation is O(n + m).
  auto row_start = [n](VertexId r) {
    return static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(n - 1) -
           static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(r - 1) /
               2;
  };
  std::uint64_t idx = 0;
  bool first = true;
  VertexId row = 0;
  while (true) {
    const std::uint64_t gap =
        edge_probability >= 1.0 ? 0 : rng.NextGeometric(edge_probability);
    idx += gap + (first ? 0 : 1);
    first = false;
    if (idx >= total) break;
    VertexId u, v;
    if (directed) {
      u = static_cast<VertexId>(idx / static_cast<std::uint64_t>(n - 1));
      auto r = static_cast<VertexId>(idx % static_cast<std::uint64_t>(n - 1));
      v = r >= u ? r + 1 : r;  // skip the diagonal
    } else {
      while (row + 1 < n && row_start(row + 1) <= idx) ++row;
      u = row;
      v = static_cast<VertexId>(idx - row_start(u)) + u + 1;
    }
    g.AddEdge(u, v, rng.NextDouble(weights.lo, weights.hi)).CheckOk();
  }
  return g;
}

Graph PaperErdosRenyi(VertexId n, std::uint64_t seed, WeightRange weights) {
  return ErdosRenyi(n, PaperEdgeProbability(n), weights, seed);
}

Graph PathGraph(VertexId n, double weight) {
  Graph g(n);
  for (VertexId i = 0; i + 1 < n; ++i) g.AddEdge(i, i + 1, weight).CheckOk();
  return g;
}

Graph CycleGraph(VertexId n, double weight) {
  Graph g = PathGraph(n, weight);
  if (n > 2) g.AddEdge(n - 1, 0, weight).CheckOk();
  return g;
}

Graph StarGraph(VertexId n, double weight) {
  Graph g(n);
  for (VertexId i = 1; i < n; ++i) g.AddEdge(0, i, weight).CheckOk();
  return g;
}

Graph CompleteGraph(VertexId n, WeightRange weights, std::uint64_t seed) {
  Graph g(n);
  Xoshiro256 rng(seed);
  for (VertexId u = 0; u < n; ++u) {
    for (VertexId v = u + 1; v < n; ++v) {
      g.AddEdge(u, v, rng.NextDouble(weights.lo, weights.hi)).CheckOk();
    }
  }
  return g;
}

Graph GridGraph(VertexId rows, VertexId cols, double weight) {
  Graph g(rows * cols);
  auto id = [cols](VertexId r, VertexId c) { return r * cols + c; };
  for (VertexId r = 0; r < rows; ++r) {
    for (VertexId c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.AddEdge(id(r, c), id(r, c + 1), weight).CheckOk();
      if (r + 1 < rows) g.AddEdge(id(r, c), id(r + 1, c), weight).CheckOk();
    }
  }
  return g;
}

std::vector<std::array<double, 3>> SwissRoll(std::int64_t count,
                                             std::uint64_t seed) {
  std::vector<std::array<double, 3>> points;
  points.reserve(static_cast<std::size_t>(count));
  Xoshiro256 rng(seed);
  for (std::int64_t i = 0; i < count; ++i) {
    const double t = 1.5 * 3.14159265358979 * (1.0 + 2.0 * rng.NextDouble());
    const double height = 21.0 * rng.NextDouble();
    points.push_back({t * std::cos(t), height, t * std::sin(t)});
  }
  return points;
}

Graph KnnGraph(const std::vector<std::array<double, 3>>& points, int k) {
  const auto n = static_cast<VertexId>(points.size());
  Graph g(n);
  if (k <= 0 || n <= 1) return g;
  auto dist = [&](VertexId a, VertexId b) {
    double s = 0.0;
    for (int d = 0; d < 3; ++d) {
      const double diff = points[static_cast<std::size_t>(a)][static_cast<std::size_t>(d)] -
                          points[static_cast<std::size_t>(b)][static_cast<std::size_t>(d)];
      s += diff * diff;
    }
    return std::sqrt(s);
  };
  // Deduplicate symmetric pairs: add each chosen edge once, smaller id first.
  std::vector<std::pair<VertexId, VertexId>> chosen;
  for (VertexId u = 0; u < n; ++u) {
    // Max-heap of the k nearest so far.
    std::priority_queue<std::pair<double, VertexId>> heap;
    for (VertexId v = 0; v < n; ++v) {
      if (v == u) continue;
      const double d = dist(u, v);
      if (static_cast<int>(heap.size()) < k) {
        heap.emplace(d, v);
      } else if (d < heap.top().first) {
        heap.pop();
        heap.emplace(d, v);
      }
    }
    while (!heap.empty()) {
      const VertexId v = heap.top().second;
      heap.pop();
      chosen.emplace_back(std::min(u, v), std::max(u, v));
    }
  }
  std::sort(chosen.begin(), chosen.end());
  chosen.erase(std::unique(chosen.begin(), chosen.end()), chosen.end());
  for (const auto& [u, v] : chosen) g.AddEdge(u, v, dist(u, v)).CheckOk();
  return g;
}

}  // namespace apspark::graph
