#include "graph/io.h"

#include <fstream>
#include <sstream>

#include "common/serial.h"

namespace apspark::graph {

namespace {
constexpr std::uint32_t kBinaryMagic = 0x41505347;  // "APSG"
constexpr std::uint32_t kBinaryVersion = 1;
}  // namespace

void WriteEdgeListText(const Graph& g, std::ostream& out) {
  out << "# APSPark edge list\n";
  out << "apsp " << g.num_vertices() << " " << (g.directed() ? 1 : 0) << "\n";
  out.precision(17);
  for (const Edge& e : g.edges()) {
    out << e.u << " " << e.v << " " << e.weight << "\n";
  }
}

Result<Graph> ReadEdgeListText(std::istream& in) {
  std::string line;
  std::int64_t n = -1;
  bool directed = false;
  std::vector<Edge> edges;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    if (n < 0) {
      std::string tag;
      int directed_flag = 0;
      if (!(fields >> tag >> n >> directed_flag) || tag != "apsp" || n < 0) {
        return InvalidArgumentError("line " + std::to_string(line_no) +
                                    ": expected header 'apsp <n> <directed>'");
      }
      directed = directed_flag != 0;
      continue;
    }
    Edge e;
    if (!(fields >> e.u >> e.v >> e.weight)) {
      return InvalidArgumentError("line " + std::to_string(line_no) +
                                  ": expected '<u> <v> <weight>'");
    }
    edges.push_back(e);
  }
  if (n < 0) return InvalidArgumentError("missing 'apsp <n> <directed>' header");
  Graph g(n, directed);
  for (const Edge& e : edges) {
    Status status = g.AddEdge(e.u, e.v, e.weight);
    if (!status.ok()) return status;
  }
  return g;
}

Status WriteEdgeListTextFile(const Graph& g, const std::string& path) {
  std::ofstream out(path);
  if (!out) return InternalError("cannot open for writing: " + path);
  WriteEdgeListText(g, out);
  return out ? Status::Ok() : InternalError("write failed: " + path);
}

Result<Graph> ReadEdgeListTextFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return NotFoundError("cannot open: " + path);
  return ReadEdgeListText(in);
}

std::vector<std::uint8_t> SerializeGraph(const Graph& g) {
  BinaryWriter writer;
  writer.Write(kBinaryMagic);
  writer.Write(kBinaryVersion);
  writer.Write(g.num_vertices());
  writer.Write(static_cast<std::uint8_t>(g.directed() ? 1 : 0));
  writer.Write(static_cast<std::uint64_t>(g.num_edges()));
  for (const Edge& e : g.edges()) {
    writer.Write(e.u);
    writer.Write(e.v);
    writer.Write(e.weight);
  }
  return std::move(writer).TakeBuffer();
}

Result<Graph> DeserializeGraph(const std::vector<std::uint8_t>& bytes) {
  BinaryReader reader(bytes);
  auto magic = reader.Read<std::uint32_t>();
  if (!magic.ok() || *magic != kBinaryMagic) {
    return InvalidArgumentError("not an APSPark binary graph (bad magic)");
  }
  auto version = reader.Read<std::uint32_t>();
  if (!version.ok() || *version != kBinaryVersion) {
    return InvalidArgumentError("unsupported binary graph version");
  }
  auto n = reader.Read<VertexId>();
  if (!n.ok()) return n.status();
  auto directed = reader.Read<std::uint8_t>();
  if (!directed.ok()) return directed.status();
  auto count = reader.Read<std::uint64_t>();
  if (!count.ok()) return count.status();
  Graph g(*n, *directed != 0);
  for (std::uint64_t i = 0; i < *count; ++i) {
    auto u = reader.Read<VertexId>();
    auto v = reader.Read<VertexId>();
    auto w = reader.Read<double>();
    if (!u.ok() || !v.ok() || !w.ok()) {
      return OutOfRangeError("truncated binary graph");
    }
    Status status = g.AddEdge(*u, *v, *w);
    if (!status.ok()) return status;
  }
  if (!reader.AtEnd()) {
    return InvalidArgumentError("trailing bytes after binary graph");
  }
  return g;
}

Status WriteGraphBinaryFile(const Graph& g, const std::string& path) {
  const auto bytes = SerializeGraph(g);
  std::ofstream out(path, std::ios::binary);
  if (!out) return InternalError("cannot open for writing: " + path);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
  return out ? Status::Ok() : InternalError("write failed: " + path);
}

Result<Graph> ReadGraphBinaryFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return NotFoundError("cannot open: " + path);
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(in)),
                                  std::istreambuf_iterator<char>());
  return DeserializeGraph(bytes);
}

}  // namespace apspark::graph
