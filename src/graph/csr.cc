#include "graph/csr.h"

namespace apspark::graph {

Csr::Csr(const Graph& g) : num_vertices_(g.num_vertices()) {
  const std::size_t arcs_per_edge = g.directed() ? 1 : 2;
  std::vector<std::size_t> degree(static_cast<std::size_t>(num_vertices_) + 1,
                                  0);
  for (const Edge& e : g.edges()) {
    ++degree[static_cast<std::size_t>(e.u) + 1];
    if (!g.directed()) ++degree[static_cast<std::size_t>(e.v) + 1];
  }
  offsets_.resize(static_cast<std::size_t>(num_vertices_) + 1, 0);
  for (std::size_t i = 1; i < offsets_.size(); ++i) {
    offsets_[i] = offsets_[i - 1] + degree[i];
  }
  neighbors_.resize(g.num_edges() * arcs_per_edge);
  std::vector<std::size_t> cursor(offsets_.begin(), offsets_.end() - 1);
  for (const Edge& e : g.edges()) {
    neighbors_[cursor[static_cast<std::size_t>(e.u)]++] = {e.v, e.weight};
    if (!g.directed()) {
      neighbors_[cursor[static_cast<std::size_t>(e.v)]++] = {e.u, e.weight};
    }
  }
}

}  // namespace apspark::graph
