// Graph persistence: a line-oriented text edge-list format (easy to produce
// from any tool) and a compact binary format, so the library can be used on
// real datasets, not just synthetic generators.
//
// Text format:
//   # comments and blank lines ignored
//   apsp <n> <directed:0|1>
//   <u> <v> <weight>
//   ...
#pragma once

#include <iosfwd>
#include <string>

#include "common/status.h"
#include "graph/graph.h"

namespace apspark::graph {

/// Writes / parses the text format.
void WriteEdgeListText(const Graph& g, std::ostream& out);
Result<Graph> ReadEdgeListText(std::istream& in);

Status WriteEdgeListTextFile(const Graph& g, const std::string& path);
Result<Graph> ReadEdgeListTextFile(const std::string& path);

/// Compact binary format (magic + header + packed edges).
std::vector<std::uint8_t> SerializeGraph(const Graph& g);
Result<Graph> DeserializeGraph(const std::vector<std::uint8_t>& bytes);

Status WriteGraphBinaryFile(const Graph& g, const std::string& path);
Result<Graph> ReadGraphBinaryFile(const std::string& path);

}  // namespace apspark::graph
