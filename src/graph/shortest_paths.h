// Exact sequential shortest-path baselines.
//
// These provide the ground truth every distributed solver in this repository
// is validated against, plus the Johnson algorithm the paper cites as the
// standard sparse-friendly alternative to Floyd-Warshall (§3).
#pragma once

#include <vector>

#include "common/status.h"
#include "graph/csr.h"
#include "graph/graph.h"
#include "linalg/dense_block.h"

namespace apspark::graph {

/// Single-source Dijkstra with a binary heap. Requires non-negative weights.
std::vector<double> Dijkstra(const Csr& csr, VertexId source);

/// APSP by running Dijkstra from every source. O(n (m + n) log n).
linalg::DenseBlock DijkstraAllPairs(const Graph& g);

/// Bellman-Ford from `source`; detects negative cycles.
/// Returns distances, or kAborted status on a negative cycle.
Result<std::vector<double>> BellmanFord(const Graph& g, VertexId source);

/// Johnson's APSP: Bellman-Ford reweighting + Dijkstra per source. Handles
/// negative edges in digraphs (no negative cycles); for non-negative inputs
/// it reduces to DijkstraAllPairs modulo the reweighting pass.
Result<linalg::DenseBlock> JohnsonAllPairs(const Graph& g);

/// APSP via sequential (cache-blocked) Floyd-Warshall on the dense adjacency.
linalg::DenseBlock FloydWarshallAllPairs(const Graph& g,
                                         std::int64_t block_size = 64);

}  // namespace apspark::graph
