#include "graph/path_reconstruction.h"

#include <cmath>
#include <limits>
#include <utility>

namespace apspark::graph {

ApspWithPaths FloydWarshallWithPaths(const Graph& g) {
  const std::int64_t n = g.num_vertices();
  ApspWithPaths out{g.ToDenseAdjacency(),
                    std::vector<std::int64_t>(
                        static_cast<std::size_t>(n * n), -1),
                    n};
  auto& d = out.distances;
  auto& next = out.next;
  // Direct edges: the first hop is the destination itself.
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if (i != j && !std::isinf(d.At(i, j))) {
        next[static_cast<std::size_t>(i * n + j)] = j;
      }
    }
    next[static_cast<std::size_t>(i * n + i)] = i;
  }
  for (std::int64_t k = 0; k < n; ++k) {
    for (std::int64_t i = 0; i < n; ++i) {
      const double dik = d.At(i, k);
      if (std::isinf(dik)) continue;
      for (std::int64_t j = 0; j < n; ++j) {
        const double via = dik + d.At(k, j);
        if (via < d.At(i, j)) {
          d.Set(i, j, via);
          next[static_cast<std::size_t>(i * n + j)] =
              next[static_cast<std::size_t>(i * n + k)];
        }
      }
    }
  }
  return out;
}

Result<std::vector<VertexId>> ExtractPath(const ApspWithPaths& apsp,
                                          VertexId s, VertexId t) {
  return ExtractPathWithLookup(
      apsp.n, s, t,
      [&apsp](VertexId i, VertexId target) { return apsp.Next(i, target); });
}

linalg::DenseBlock SuccessorsFromDistances(const Graph& g,
                                           const linalg::DenseBlock& dist) {
  const std::int64_t n = g.num_vertices();
  // Per-vertex out-neighbor list from the edge list; parallel edges stay as
  // written — the argmin naturally selects the cheapest copy.
  std::vector<std::vector<std::pair<VertexId, double>>> adj(
      static_cast<std::size_t>(n));
  for (const Edge& e : g.edges()) {
    adj[static_cast<std::size_t>(e.u)].emplace_back(e.v, e.weight);
    if (!g.directed()) {
      adj[static_cast<std::size_t>(e.v)].emplace_back(e.u, e.weight);
    }
  }
  linalg::DenseBlock next(n, n);
  for (std::int64_t i = 0; i < n; ++i) {
    // Sweeping neighbors in the outer loop reads dist(k, .) row-wise.
    std::vector<double> best(static_cast<std::size_t>(n),
                             std::numeric_limits<double>::infinity());
    std::vector<double> hop(static_cast<std::size_t>(n), -1.0);
    for (const auto& [k, w] : adj[static_cast<std::size_t>(i)]) {
      for (std::int64_t j = 0; j < n; ++j) {
        const double via = w + dist.At(k, j);
        auto& b = best[static_cast<std::size_t>(j)];
        auto& h = hop[static_cast<std::size_t>(j)];
        if (via < b || (via == b && h >= 0 && static_cast<double>(k) < h)) {
          b = via;
          h = static_cast<double>(k);
        }
      }
    }
    for (std::int64_t j = 0; j < n; ++j) {
      next.Set(i, j, hop[static_cast<std::size_t>(j)]);
    }
    next.Set(i, i, static_cast<double>(i));
  }
  return next;
}

Result<std::vector<VertexId>> ExtractPathWithLookup(
    std::int64_t n, VertexId s, VertexId t,
    const std::function<std::int64_t(VertexId, VertexId)>& next_of) {
  if (s < 0 || t < 0 || s >= n || t >= n) {
    return InvalidArgumentError("path endpoints out of range");
  }
  if (next_of(s, t) < 0) {
    return NotFoundError("no path from " + std::to_string(s) + " to " +
                         std::to_string(t));
  }
  std::vector<VertexId> path{s};
  VertexId at = s;
  while (at != t) {
    at = next_of(at, t);
    if (at < 0 || at >= n) {
      return InternalError("successor walk left the vertex range");
    }
    path.push_back(at);
    if (static_cast<std::int64_t>(path.size()) > n) {
      return InternalError("successor cycle during path extraction");
    }
  }
  return path;
}

}  // namespace apspark::graph
