#include "graph/path_reconstruction.h"

#include <cmath>

namespace apspark::graph {

ApspWithPaths FloydWarshallWithPaths(const Graph& g) {
  const std::int64_t n = g.num_vertices();
  ApspWithPaths out{g.ToDenseAdjacency(),
                    std::vector<std::int64_t>(
                        static_cast<std::size_t>(n * n), -1),
                    n};
  auto& d = out.distances;
  auto& next = out.next;
  // Direct edges: the first hop is the destination itself.
  for (std::int64_t i = 0; i < n; ++i) {
    for (std::int64_t j = 0; j < n; ++j) {
      if (i != j && !std::isinf(d.At(i, j))) {
        next[static_cast<std::size_t>(i * n + j)] = j;
      }
    }
    next[static_cast<std::size_t>(i * n + i)] = i;
  }
  for (std::int64_t k = 0; k < n; ++k) {
    for (std::int64_t i = 0; i < n; ++i) {
      const double dik = d.At(i, k);
      if (std::isinf(dik)) continue;
      for (std::int64_t j = 0; j < n; ++j) {
        const double via = dik + d.At(k, j);
        if (via < d.At(i, j)) {
          d.Set(i, j, via);
          next[static_cast<std::size_t>(i * n + j)] =
              next[static_cast<std::size_t>(i * n + k)];
        }
      }
    }
  }
  return out;
}

Result<std::vector<VertexId>> ExtractPath(const ApspWithPaths& apsp,
                                          VertexId s, VertexId t) {
  if (s < 0 || t < 0 || s >= apsp.n || t >= apsp.n) {
    return InvalidArgumentError("path endpoints out of range");
  }
  if (apsp.Next(s, t) < 0) {
    return NotFoundError("no path from " + std::to_string(s) + " to " +
                         std::to_string(t));
  }
  std::vector<VertexId> path{s};
  VertexId at = s;
  while (at != t) {
    at = apsp.Next(at, t);
    path.push_back(at);
    if (static_cast<std::int64_t>(path.size()) > apsp.n) {
      return InternalError("successor cycle during path extraction");
    }
  }
  return path;
}

}  // namespace apspark::graph
