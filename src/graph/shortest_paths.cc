#include "graph/shortest_paths.h"

#include <cmath>
#include <queue>

#include "linalg/kernels.h"

namespace apspark::graph {

std::vector<double> Dijkstra(const Csr& csr, VertexId source) {
  const auto n = static_cast<std::size_t>(csr.num_vertices());
  std::vector<double> dist(n, linalg::kInf);
  dist[static_cast<std::size_t>(source)] = 0.0;
  using Item = std::pair<double, VertexId>;  // (distance, vertex)
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  heap.emplace(0.0, source);
  while (!heap.empty()) {
    const auto [d, u] = heap.top();
    heap.pop();
    if (d > dist[static_cast<std::size_t>(u)]) continue;  // stale entry
    for (const Csr::Neighbor& nb : csr.Neighbors(u)) {
      const double nd = d + nb.weight;
      if (nd < dist[static_cast<std::size_t>(nb.to)]) {
        dist[static_cast<std::size_t>(nb.to)] = nd;
        heap.emplace(nd, nb.to);
      }
    }
  }
  return dist;
}

linalg::DenseBlock DijkstraAllPairs(const Graph& g) {
  const Csr csr(g);
  const VertexId n = g.num_vertices();
  linalg::DenseBlock out(n, n, linalg::kInf);
  for (VertexId s = 0; s < n; ++s) {
    const std::vector<double> dist = Dijkstra(csr, s);
    for (VertexId t = 0; t < n; ++t) {
      out.Set(s, t, dist[static_cast<std::size_t>(t)]);
    }
  }
  return out;
}

Result<std::vector<double>> BellmanFord(const Graph& g, VertexId source) {
  const auto n = static_cast<std::size_t>(g.num_vertices());
  std::vector<double> dist(n, linalg::kInf);
  dist[static_cast<std::size_t>(source)] = 0.0;
  auto relax = [&dist](VertexId u, VertexId v, double w) {
    const auto su = static_cast<std::size_t>(u);
    const auto sv = static_cast<std::size_t>(v);
    if (!std::isinf(dist[su]) && dist[su] + w < dist[sv]) {
      dist[sv] = dist[su] + w;
      return true;
    }
    return false;
  };
  bool changed = true;
  for (std::size_t round = 0; round + 1 < n && changed; ++round) {
    changed = false;
    for (const Edge& e : g.edges()) {
      changed |= relax(e.u, e.v, e.weight);
      if (!g.directed()) changed |= relax(e.v, e.u, e.weight);
    }
  }
  if (changed) {
    // One more pass: any further improvement proves a negative cycle.
    for (const Edge& e : g.edges()) {
      if (relax(e.u, e.v, e.weight) ||
          (!g.directed() && relax(e.v, e.u, e.weight))) {
        return AbortedError("negative cycle reachable from source");
      }
    }
  }
  return dist;
}

Result<linalg::DenseBlock> JohnsonAllPairs(const Graph& g) {
  const VertexId n = g.num_vertices();
  // Augment with a virtual source connected to every vertex by weight 0;
  // run Bellman-Ford to get the potential h.
  Graph augmented(n + 1, /*directed=*/true);
  for (const Edge& e : g.edges()) {
    augmented.AddEdge(e.u, e.v, e.weight).CheckOk();
    if (!g.directed()) augmented.AddEdge(e.v, e.u, e.weight).CheckOk();
  }
  for (VertexId v = 0; v < n; ++v) augmented.AddEdge(n, v, 0.0).CheckOk();
  auto h = BellmanFord(augmented, n);
  if (!h.ok()) return h.status();

  // Reweight: w'(u,v) = w(u,v) + h(u) - h(v) >= 0.
  Graph reweighted(n, /*directed=*/true);
  const auto& pot = *h;
  for (const Edge& e : g.edges()) {
    const auto su = static_cast<std::size_t>(e.u);
    const auto sv = static_cast<std::size_t>(e.v);
    reweighted.AddEdge(e.u, e.v, e.weight + pot[su] - pot[sv]).CheckOk();
    if (!g.directed()) {
      reweighted.AddEdge(e.v, e.u, e.weight + pot[sv] - pot[su]).CheckOk();
    }
  }
  const Csr csr(reweighted);
  linalg::DenseBlock out(n, n, linalg::kInf);
  for (VertexId s = 0; s < n; ++s) {
    const std::vector<double> dist = Dijkstra(csr, s);
    for (VertexId t = 0; t < n; ++t) {
      const double d = dist[static_cast<std::size_t>(t)];
      // Undo the reweighting.
      out.Set(s, t,
              std::isinf(d) ? linalg::kInf
                            : d - pot[static_cast<std::size_t>(s)] +
                                  pot[static_cast<std::size_t>(t)]);
    }
  }
  return out;
}

linalg::DenseBlock FloydWarshallAllPairs(const Graph& g,
                                         std::int64_t block_size) {
  linalg::DenseBlock a = g.ToDenseAdjacency();
  linalg::BlockedFloydWarshall(a, block_size);
  return a;
}

}  // namespace apspark::graph
