// Synthetic graph generators.
//
// The paper's benchmark inputs are Erdős–Rényi graphs with edge probability
// p_e = (1+eps) ln(n)/n, eps = 0.1 (§5.1) and arbitrary positive weights.
// The deterministic structured generators below feed correctness tests, and
// KnnGraph supports the manifold-learning example from the paper's intro
// (geodesic distances for Isomap-style pipelines).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace apspark::graph {

struct WeightRange {
  double lo = 1.0;
  double hi = 10.0;
};

/// G(n, p) with geometric edge skipping (O(m) expected time), uniform weights
/// in [weights.lo, weights.hi). Deterministic in `seed`.
Graph ErdosRenyi(VertexId n, double edge_probability, WeightRange weights,
                 std::uint64_t seed, bool directed = false);

/// The paper's parameterization: p_e = (1+eps) ln(n)/n.
double PaperEdgeProbability(VertexId n, double eps = 0.1);

/// Convenience wrapper using PaperEdgeProbability.
Graph PaperErdosRenyi(VertexId n, std::uint64_t seed,
                      WeightRange weights = {1.0, 10.0});

/// 0-1-2-...-(n-1) path, unit or specified weights.
Graph PathGraph(VertexId n, double weight = 1.0);

/// n-cycle.
Graph CycleGraph(VertexId n, double weight = 1.0);

/// Star with vertex 0 at the centre.
Graph StarGraph(VertexId n, double weight = 1.0);

/// Complete graph with uniform random weights (deterministic in seed).
Graph CompleteGraph(VertexId n, WeightRange weights, std::uint64_t seed);

/// rows x cols 4-neighbour grid with unit weights.
Graph GridGraph(VertexId rows, VertexId cols, double weight = 1.0);

/// Points on a "Swiss roll" 2-manifold embedded in R^3 (classic Isomap test
/// set); used by the geodesic-distances example.
std::vector<std::array<double, 3>> SwissRoll(std::int64_t count,
                                             std::uint64_t seed);

/// Symmetric k-nearest-neighbour graph over points in R^3; edge weight is
/// Euclidean distance. O(n^2 log k) construction — fine at example scale.
Graph KnnGraph(const std::vector<std::array<double, 3>>& points, int k);

}  // namespace apspark::graph
