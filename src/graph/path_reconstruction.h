// Path reconstruction.
//
// The paper computes "length of all pairs shortest paths (i.e., no paths
// themselves)" (§3). This extension recovers the actual vertex sequences:
// Floyd-Warshall with a successor matrix, plus extraction of any (s, t)
// path. Successor (rather than predecessor) tracking composes naturally
// with the k-loop: next(i, j) is the first hop of the current best i->j
// path.
#pragma once

#include <functional>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "linalg/dense_block.h"

namespace apspark::graph {

struct ApspWithPaths {
  linalg::DenseBlock distances;
  /// next(i, j) = first hop on a shortest i->j path; -1 if unreachable.
  std::vector<std::int64_t> next;
  std::int64_t n = 0;

  std::int64_t Next(VertexId i, VertexId j) const noexcept {
    return next[static_cast<std::size_t>(i * n + j)];
  }
};

/// Floyd-Warshall with successor tracking. O(n^3) time, O(n^2) extra space.
ApspWithPaths FloydWarshallWithPaths(const Graph& g);

/// The vertex sequence of a shortest s->t path (inclusive of endpoints),
/// or NOT_FOUND if t is unreachable from s.
Result<std::vector<VertexId>> ExtractPath(const ApspWithPaths& apsp,
                                          VertexId s, VertexId t);

/// Derives a full successor matrix from an already-solved distance matrix:
/// next(i, j) = the neighbor k of i minimizing w(i, k) + dist(k, j)
/// (smallest k on ties), which is the first hop of a shortest i->j path.
/// With positive weights the chain strictly decreases remaining distance,
/// so walking it terminates at j. Entries are stored as doubles in an
/// n x n DenseBlock (-1 where j is unreachable, i on the diagonal) so the
/// plane persists through the same serialization as distances. O(n * m).
///
/// This is how the serving layer gets paths out of the blocked solvers,
/// which compute lengths only (the paper solves "no paths themselves") —
/// no O(n^3) re-solve with tracking is needed.
linalg::DenseBlock SuccessorsFromDistances(const Graph& g,
                                           const linalg::DenseBlock& dist);

/// Walks a successor lookup from s to t. `next_of(i, t)` returns the first
/// hop of a shortest i->t path, or -1 when unreachable — backed by anything
/// from an in-memory ApspWithPaths to block-resident store fetches.
Result<std::vector<VertexId>> ExtractPathWithLookup(
    std::int64_t n, VertexId s, VertexId t,
    const std::function<std::int64_t(VertexId, VertexId)>& next_of);

}  // namespace apspark::graph
