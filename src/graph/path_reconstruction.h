// Path reconstruction.
//
// The paper computes "length of all pairs shortest paths (i.e., no paths
// themselves)" (§3). This extension recovers the actual vertex sequences:
// Floyd-Warshall with a successor matrix, plus extraction of any (s, t)
// path. Successor (rather than predecessor) tracking composes naturally
// with the k-loop: next(i, j) is the first hop of the current best i->j
// path.
#pragma once

#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "linalg/dense_block.h"

namespace apspark::graph {

struct ApspWithPaths {
  linalg::DenseBlock distances;
  /// next(i, j) = first hop on a shortest i->j path; -1 if unreachable.
  std::vector<std::int64_t> next;
  std::int64_t n = 0;

  std::int64_t Next(VertexId i, VertexId j) const noexcept {
    return next[static_cast<std::size_t>(i * n + j)];
  }
};

/// Floyd-Warshall with successor tracking. O(n^3) time, O(n^2) extra space.
ApspWithPaths FloydWarshallWithPaths(const Graph& g);

/// The vertex sequence of a shortest s->t path (inclusive of endpoints),
/// or NOT_FOUND if t is unreachable from s.
Result<std::vector<VertexId>> ExtractPath(const ApspWithPaths& apsp,
                                          VertexId s, VertexId t);

}  // namespace apspark::graph
