#include "pregel/pregel_sssp.h"

#include <algorithm>
#include <cmath>

#include "graph/csr.h"
#include "linalg/kernels.h"

namespace apspark::pregel {

using graph::VertexId;
using linalg::BlockPtr;
using linalg::DenseBlock;
using linalg::kInf;
using sparklet::RddPtr;
using sparklet::TaskContext;

namespace internal {

/// Vertex value / combiner for the Pregel loop: the resident distance
/// vector, the (min-combined) incoming message, and a changed flag.
struct Payload {
  BlockPtr state;    // resident distance vector (may be null for messages)
  BlockPtr message;  // min-combined incoming messages (may be null)
  bool changed = false;
};

using VertexRecord = std::pair<std::int64_t, Payload>;

}  // namespace internal
}  // namespace apspark::pregel

namespace apspark::sparklet {
// Shuffle accounting: a Pregel record carries its distance vector(s), so
// message volume scales with the landmark count — the effect that makes
// landmark-APSP explode.
template <>
struct Serde<apspark::pregel::internal::Payload> {
  static std::uint64_t SizeOf(
      const apspark::pregel::internal::Payload& p) noexcept {
    return 1 + (p.state ? p.state->SerializedBytes() : 0) +
           (p.message ? p.message->SerializedBytes() : 0);
  }
};
}  // namespace apspark::sparklet

namespace apspark::pregel {

using internal::Payload;
using internal::VertexRecord;

namespace {

BlockPtr MinVectors(const BlockPtr& a, const BlockPtr& b, TaskContext& tc) {
  if (!a) return b;
  if (!b) return a;
  tc.ChargeCompute(tc.cost_model().ElementwiseSeconds(a->size()));
  return linalg::MakeBlock(linalg::ElementMin(*a, *b));
}

/// True if any entry of `candidate` beats `current` (phantom: assume yes,
/// the caller bounds the supersteps instead).
bool Improves(const BlockPtr& current, const BlockPtr& candidate) {
  if (!candidate) return false;
  if (current->is_phantom() || candidate->is_phantom()) return true;
  for (std::int64_t i = 0; i < current->size(); ++i) {
    if (candidate->data()[i] < current->data()[i]) return true;
  }
  return false;
}

}  // namespace

double ModelSuperstepSeconds(std::int64_t n, double avg_degree,
                             const sparklet::ClusterConfig& cluster,
                             const linalg::CostModel& model) {
  const double nd = static_cast<double>(n);
  // Every vertex sends its n-slot vector to every neighbour: the message
  // volume is ~ (sum of degrees) * n * 8 bytes per superstep, all of it
  // through the shuffle; combining and updating costs ~2 ops per entry.
  const double message_bytes = nd * avg_degree * nd * 8.0;
  const double wire =
      message_bytes * cluster.shuffle_compression /
      (cluster.network.bandwidth_bytes_per_sec * cluster.nodes);
  const double serde = message_bytes * cluster.serde_seconds_per_byte /
                       cluster.total_cores();
  const double combine =
      model.ElementwiseSeconds(static_cast<std::int64_t>(nd * avg_degree *
                                                         nd)) /
      cluster.total_cores() * 2.0;
  return wire + serde + combine;
}

PregelResult ShortestPaths(const graph::Graph& g,
                           const std::vector<VertexId>& landmarks,
                           const PregelOptions& options,
                           const sparklet::ClusterConfig& cluster) {
  PregelResult result;
  const VertexId n = g.num_vertices();
  const auto k = static_cast<std::int64_t>(landmarks.size());
  if (k == 0) {
    result.status = InvalidArgumentError("no landmarks given");
    return result;
  }
  sparklet::SparkletContext ctx(cluster);
  auto csr = std::make_shared<const graph::Csr>(g);

  // Initial vertex states: inf everywhere, 0 in the own-landmark slot.
  std::vector<VertexRecord> init;
  init.reserve(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) {
    if (options.phantom) {
      init.push_back({v, {linalg::MakeBlock(DenseBlock::Phantom(1, k)),
                          nullptr, true}});
      continue;
    }
    DenseBlock dists(1, k, kInf);
    for (std::int64_t l = 0; l < k; ++l) {
      if (landmarks[static_cast<std::size_t>(l)] == v) dists.Set(0, l, 0.0);
    }
    init.push_back({v, {linalg::MakeBlock(std::move(dists)), nullptr, true}});
  }
  auto partitioner =
      sparklet::MakePortableHash<std::int64_t>(options.num_partitions);
  auto vertices = ctx.ParallelizePartitioned("pregel-v", init, partitioner);
  ctx.cluster().Reset();

  const std::int64_t max_steps =
      options.max_supersteps > 0 ? options.max_supersteps : n;
  std::int64_t step = 0;
  try {
    for (; step < max_steps; ++step) {
      // sendMsg: changed vertices relax along their out-edges.
      auto messages = vertices->FlatMap<VertexRecord>(
          "pregel-messages",
          [csr](const VertexRecord& rec, TaskContext& tc,
                std::vector<VertexRecord>& out) {
            const auto& [v, payload] = rec;
            if (!payload.changed) return;
            for (const auto& nb : csr->Neighbors(v)) {
              BlockPtr relaxed;
              if (payload.state->is_phantom()) {
                relaxed = payload.state;
              } else {
                DenseBlock m = *payload.state;
                for (double& d : m) d += nb.weight;
                relaxed = linalg::MakeBlock(std::move(m));
              }
              tc.ChargeCompute(
                  tc.cost_model().ElementwiseSeconds(payload.state->size()));
              out.push_back({nb.to, Payload{nullptr, relaxed, false}});
            }
          });

      // mergeMsg + vprog: shuffle states and messages together, min-combine.
      auto tagged_vertices = vertices->Map(
          "pregel-tag", [](const VertexRecord& rec, TaskContext&) {
            VertexRecord copy = rec;
            copy.second.message = nullptr;
            return copy;
          });
      auto combined = sparklet::CombineByKey<std::int64_t, Payload, Payload>(
          ctx.Union("pregel-union", {tagged_vertices, messages}), partitioner,
          "pregel-combine",
          [](Payload&& p) { return p; },
          [](Payload& acc, Payload&& p, TaskContext& tc) {
            if (p.state) acc.state = p.state;
            if (p.message) acc.message = MinVectors(acc.message, p.message, tc);
          },
          [](Payload& acc, Payload&& p, TaskContext& tc) {
            if (p.state) acc.state = p.state;
            if (p.message) acc.message = MinVectors(acc.message, p.message, tc);
          });
      vertices = combined
                     ->Map("pregel-update",
                           [](const VertexRecord& rec, TaskContext& tc) {
                             const auto& [v, payload] = rec;
                             Payload next;
                             next.changed = Improves(payload.state,
                                                     payload.message);
                             next.state = payload.message
                                              ? MinVectors(payload.state,
                                                           payload.message, tc)
                                              : payload.state;
                             return VertexRecord{v, next};
                           })
                     ->Persist();
      vertices->EnsureMaterialized();

      // voteToHalt: stop when no vertex improved. (Phantom mode cannot
      // inspect values; it runs to the superstep bound.)
      if (!options.phantom) {
        auto active =
            vertices
                ->Filter("pregel-active",
                         [](const VertexRecord& rec) {
                           return rec.second.changed;
                         })
                ->Count();
        if (active == 0) {
          ++step;
          break;
        }
      }
    }
    result.status = Status::Ok();
  } catch (const sparklet::SparkletAbort& abort) {
    result.status = abort.status();
  }

  result.supersteps = step;
  result.sim_seconds = ctx.now_seconds();
  result.metrics = ctx.metrics();
  if (result.status.ok() && !options.phantom) {
    DenseBlock out(n, k, kInf);
    for (const auto& [v, payload] : vertices->Collect()) {
      for (std::int64_t l = 0; l < k; ++l) {
        out.Set(v, l, payload.state->At(0, l));
      }
    }
    result.distances = std::move(out);
  }
  return result;
}

PregelResult AllPairs(const graph::Graph& g, const PregelOptions& options,
                      const sparklet::ClusterConfig& cluster) {
  std::vector<VertexId> landmarks(static_cast<std::size_t>(g.num_vertices()));
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    landmarks[static_cast<std::size_t>(v)] = v;
  }
  return ShortestPaths(g, landmarks, options, cluster);
}

}  // namespace apspark::pregel
