// Pregel/BSP multi-source shortest paths on sparklet — the GraphX /
// GraphFrames baseline from the paper's §2.
//
// GraphX's ShortestPaths (and GraphFrames' successor) compute distances to a
// set of *landmark* vertices with a Pregel vertex program: each vertex keeps
// a distance vector (one slot per landmark), sends relaxed copies along its
// edges, and a min-combiner merges incoming messages; iteration stops when
// no distance improves. APSP is the degenerate case landmarks = V, at which
// point every superstep shuffles O(n^2) doubles — the reason the paper found
// GraphX "unable to handle any reasonable problem size" and turned to 2-D
// blocked decompositions instead.
//
// This implementation runs the vertex program on sparklet RDDs (vertex-state
// records + message shuffles with a min combiner), so its virtual-cluster
// cost is directly comparable with the paper's solvers.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/status.h"
#include "graph/graph.h"
#include "linalg/dense_block.h"
#include "sparklet/rdd.h"

namespace apspark::pregel {

struct PregelOptions {
  /// RDD partitions used for the vertex and message RDDs.
  int num_partitions = 8;
  /// Safety bound on supersteps (0 = number of vertices).
  std::int64_t max_supersteps = 0;
  /// Model run: skip payloads, keep cost accounting (like ApspSolver's
  /// SolveModel; used by the baseline benchmark at paper scale).
  bool phantom = false;
};

struct PregelResult {
  Status status;
  /// distances(v, l): distance from vertex v to landmarks[l].
  std::optional<linalg::DenseBlock> distances;
  std::int64_t supersteps = 0;
  double sim_seconds = 0;
  sparklet::SimMetrics metrics;
};

/// Multi-source shortest paths for `landmarks`; undirected or directed
/// graphs with non-negative weights.
PregelResult ShortestPaths(const graph::Graph& g,
                           const std::vector<graph::VertexId>& landmarks,
                           const PregelOptions& options,
                           const sparklet::ClusterConfig& cluster);

/// APSP via landmarks = V (the configuration the paper rejected).
PregelResult AllPairs(const graph::Graph& g, const PregelOptions& options,
                      const sparklet::ClusterConfig& cluster);

/// Modelled cost of one superstep of landmark-APSP at paper scale, without
/// running it: message volume ~ 2m * n * 8 bytes, combine + update work.
/// Used by the baseline bench to show the O(n^2)-per-superstep blow-up.
double ModelSuperstepSeconds(std::int64_t n, double avg_degree,
                             const sparklet::ClusterConfig& cluster,
                             const linalg::CostModel& model);

}  // namespace apspark::pregel
